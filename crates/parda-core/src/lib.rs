//! PARDA: fast parallel reuse distance analysis.
//!
//! This crate implements every algorithm of the paper:
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Algorithm 1 — tree-based sequential analysis (Olken) | [`seq::analyze_sequential`], [`Engine::process_chunk`] |
//! | Algorithm 2 — tree distance query | `parda_tree::ReuseTree::distance` |
//! | Algorithm 3 — the Parda parallel algorithm | [`parallel::parda_msg`], [`parallel::parda_threads`] |
//! | Algorithm 4 — space-optimized infinity processing | [`Engine::process_infinities`] |
//! | Algorithms 5–6 — multi-phase streaming analysis | [`phased::parda_phased`] |
//! | Algorithm 7 — bounded (cache-capped) analysis | `bound` option on every engine |
//! | §III-A — naïve stack algorithm | [`seq::analyze_naive`] |
//! | §IV-D rank-renaming enhancement | [`phased::Reduction::RenumberRanks`] |
//! | §VII object-level applications | [`object::analyze_by_region`] |
//! | §VII sampling combination | [`approx`] (SHARDS/AET sketches; legacy shim in [`sampled`]) |
//! | §I cache sharing & partitioning | [`shared::analyze_corun`], [`shared::optimal_partition`] |
//! | §I thread-aware shared-cache analysis | [`concurrent::analyze_concurrent`], [`concurrent::recommend_partition`] |
//! | §VII phase detection | [`window::detect_phases`] |
//!
//! # Quick start
//!
//! Every engine is reachable through the [`Analysis`] builder, which also
//! produces the per-rank observability [`Report`] on request:
//!
//! ```
//! use parda_core::{Analysis, Mode};
//! use parda_trace::gen::{ReuseProfile, StackDistGen};
//! use parda_trace::AddressStream;
//!
//! // A synthetic trace: 100k references over 5k addresses.
//! let trace = StackDistGen::new(100_000, 5_000, ReuseProfile::geometric(16.0), 7)
//!     .take_trace(100_000);
//!
//! let (hist, report) = Analysis::new()
//!     .ranks(4)
//!     .mode(Mode::Threads)
//!     .stats(true)
//!     .run(trace.as_slice());
//!
//! assert_eq!(hist.total(), 100_000);
//! assert_eq!(hist.infinite(), 5_000); // one cold miss per distinct address
//! // Predicted miss ratio of a 1k-line LRU cache:
//! let mr = hist.miss_ratio(1_000);
//! assert!(mr < 1.0);
//! // The report's per-rank chunk references partition the trace.
//! assert_eq!(report.unwrap().total_rank_refs(), 100_000);
//! ```

pub mod analysis;
pub mod approx;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod object;
pub mod parallel;
pub mod phased;
pub mod sampled;
pub mod seq;
pub mod session;
pub mod shared;
pub mod window;

pub use analysis::{Analysis, Mode};
pub use approx::{analyze_approx, ApproxMode, ApproxSketch, SampleRate};
pub use concurrent::{
    analyze_concurrent, analyze_concurrent_kind, default_granularity, interleave_threads,
    recommend_partition, shared_metrics, ConcurrentAnalysis, InterleaveModel, PartitionPlan,
};
pub use engine::{Engine, MissSink};
pub use error::{FaultPolicy, PardaError};
pub use parallel::{parda_threads_faulted, PardaConfig};
pub use parda_obs::Report;
pub use parda_trace::Degradation;
pub use session::{SessionAnalysis, SessionStep};

use parda_hist::ReuseHistogram;
use parda_trace::Addr;
use parda_tree::TreeKind;

/// Run the sequential tree-based analyzer with a runtime-selected tree.
///
/// Thin wrapper over [`Analysis`] (`.mode(Mode::Seq)`), kept for callers
/// that don't need the builder.
pub fn analyze_sequential_kind(
    trace: &[Addr],
    kind: TreeKind,
    bound: Option<u64>,
) -> ReuseHistogram {
    Analysis::new()
        .tree(kind)
        .mode(Mode::Seq)
        .bound(bound)
        .run(trace)
        .0
}

/// Run the Parda parallel analyzer (thread-cascade flavour) with a
/// runtime-selected tree.
///
/// Thin wrapper over [`Analysis`] (`.mode(Mode::Threads)`).
pub fn parda_kind(trace: &[Addr], kind: TreeKind, config: &PardaConfig) -> ReuseHistogram {
    Analysis::new()
        .tree(kind)
        .mode(Mode::Threads)
        .ranks(config.ranks)
        .bound(config.bound)
        .space_optimized(config.space_optimized)
        .subchunk_refs(config.subchunk_refs)
        .run(trace)
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_dispatchers_agree() {
        let trace: Vec<Addr> = (0..500).map(|i| (i * 7) % 97).collect();
        let splay = analyze_sequential_kind(&trace, TreeKind::Splay, None);
        let avl = analyze_sequential_kind(&trace, TreeKind::Avl, None);
        let treap = analyze_sequential_kind(&trace, TreeKind::Treap, None);
        let vector = analyze_sequential_kind(&trace, TreeKind::Vector, None);
        assert_eq!(splay, avl);
        assert_eq!(splay, treap);
        assert_eq!(splay, vector);

        let cfg = PardaConfig::with_ranks(3);
        assert_eq!(parda_kind(&trace, TreeKind::Avl, &cfg), splay);
    }
}

//! Windowed analysis and locality-phase detection.
//!
//! Shen, Zhong & Ding (ASPLOS'04, cited in the paper's §VII) detect program
//! phases from reuse-distance signatures: when the distance distribution of
//! the current execution window stops resembling the previous window's, a
//! phase boundary is declared. This module reproduces the primitive on top
//! of [`crate::seq::analyze_with`]:
//!
//! * [`windowed_histograms`] — one log₂-binned histogram per fixed-size
//!   window of the trace (distances still measured globally);
//! * [`detect_phases`] — boundaries where the normalized L1 distance
//!   between consecutive window signatures exceeds a threshold.

use crate::seq::analyze_with;
use parda_hist::BinnedHistogram;
use parda_trace::Addr;
use parda_tree::ReuseTree;

/// Per-window binned reuse-distance signatures.
#[derive(Clone, Debug)]
pub struct WindowedAnalysis {
    /// Window length in references.
    pub window: usize,
    /// One signature per window, in trace order (the last may be partial).
    pub signatures: Vec<BinnedHistogram>,
}

/// Compute one binned histogram per `window` references.
///
/// Distances are measured over the whole trace (a reuse that spans windows
/// is attributed to the window of its *second* access, with its true
/// distance) — windowing only buckets the observations.
pub fn windowed_histograms<T: ReuseTree + Default>(
    trace: &[Addr],
    window: usize,
) -> WindowedAnalysis {
    assert!(window > 0, "window must be positive");
    let num_windows = trace.len().div_ceil(window);
    let mut signatures = vec![BinnedHistogram::new(); num_windows.max(1)];
    if trace.is_empty() {
        signatures.clear();
    }
    analyze_with::<T, _>(trace, |i, _, distance| {
        signatures[i / window].record(distance);
    });
    WindowedAnalysis { window, signatures }
}

/// Normalized L1 distance between two signatures, in `[0, 2]`
/// (0 = identical shape, 2 = disjoint support).
pub fn signature_distance(a: &BinnedHistogram, b: &BinnedHistogram) -> f64 {
    if a.total() == 0 || b.total() == 0 {
        return if a.total() == b.total() { 0.0 } else { 2.0 };
    }
    let bins = a.num_bins().max(b.num_bins());
    let mut l1 = 0.0;
    for idx in 0..bins {
        let pa = a.bin(idx) as f64 / a.total() as f64;
        let pb = b.bin(idx) as f64 / b.total() as f64;
        l1 += (pa - pb).abs();
    }
    l1 += (a.infinite() as f64 / a.total() as f64 - b.infinite() as f64 / b.total() as f64).abs();
    l1
}

/// Detect phase boundaries: reference indices where the signature of window
/// `w` differs from window `w-1` by more than `threshold` (normalized L1;
/// 0.5 is a reasonable default).
pub fn detect_phases(analysis: &WindowedAnalysis, threshold: f64) -> Vec<usize> {
    analysis
        .signatures
        .windows(2)
        .enumerate()
        .filter(|(_, pair)| signature_distance(&pair[0], &pair[1]) > threshold)
        .map(|(w, _)| (w + 1) * analysis.window)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_hist::Distance;
    use parda_tree::SplayTree;

    #[test]
    fn windows_partition_the_trace() {
        let trace: Vec<Addr> = (0..1000).map(|i| i % 50).collect();
        let analysis = windowed_histograms::<SplayTree>(&trace, 256);
        assert_eq!(analysis.signatures.len(), 4);
        let total: u64 = analysis.signatures.iter().map(|s| s.total()).sum();
        assert_eq!(total, 1000);
        assert_eq!(analysis.signatures[3].total(), 1000 - 3 * 256);
    }

    #[test]
    fn empty_trace_has_no_windows() {
        let analysis = windowed_histograms::<SplayTree>(&[], 64);
        assert!(analysis.signatures.is_empty());
        assert!(detect_phases(&analysis, 0.5).is_empty());
    }

    #[test]
    fn signature_distance_properties() {
        let mut a = BinnedHistogram::new();
        a.record_n(Distance::Finite(1), 10);
        assert_eq!(signature_distance(&a, &a), 0.0);

        let mut b = BinnedHistogram::new();
        b.record_n(Distance::Finite(1024), 10);
        let d = signature_distance(&a, &b);
        assert!((d - 2.0).abs() < 1e-12, "disjoint supports: {d}");

        // Scale invariance: shape matters, not mass.
        let mut a2 = BinnedHistogram::new();
        a2.record_n(Distance::Finite(1), 1000);
        assert!(signature_distance(&a, &a2) < 1e-12);
    }

    #[test]
    fn steady_workload_has_no_phase_boundaries() {
        let trace: Vec<Addr> = (0..8000).map(|i| i % 64).collect();
        let analysis = windowed_histograms::<SplayTree>(&trace, 1000);
        let boundaries = detect_phases(&analysis, 0.5);
        // Window 0 contains the cold misses; from window 1 on the signature
        // is constant. At most the 0→1 transition may fire.
        assert!(
            boundaries.iter().all(|&b| b <= 1000),
            "spurious boundaries: {boundaries:?}"
        );
    }

    proptest::proptest! {
        /// A planted gross phase change is reported within one window of
        /// its true position, whatever the window size and phase lengths.
        #[test]
        fn planted_transition_lands_within_one_window(
            phase1_windows in 4usize..10,
            phase2_windows in 4usize..10,
            window in proptest::prop_oneof![
                proptest::Just(250usize),
                proptest::Just(500),
                proptest::Just(1000),
            ],
        ) {
            let cut = phase1_windows * window;
            let mut trace: Vec<Addr> = (0..cut).map(|i| (i % 8) as Addr).collect();
            trace.extend((0..phase2_windows * window).map(|i| 1000 + (i % 2048) as Addr));
            let analysis = windowed_histograms::<SplayTree>(&trace, window);
            let boundaries = detect_phases(&analysis, 0.5);
            proptest::prop_assert!(
                boundaries.iter().any(|&b| b.abs_diff(cut) <= window),
                "no boundary within one window of {cut}: {boundaries:?}"
            );
        }

        /// Stationary workloads never produce boundaries past the cold-miss
        /// warmup window, at any threshold.
        #[test]
        fn stationary_trace_is_boundary_free_after_warmup(
            period in 2usize..100,
            windows in 3usize..12,
            threshold in proptest::prop_oneof![
                proptest::Just(0.3f64),
                proptest::Just(0.5),
                proptest::Just(0.9),
            ],
        ) {
            let window = 1000usize;
            let trace: Vec<Addr> = (0..windows * window).map(|i| (i % period) as Addr).collect();
            let analysis = windowed_histograms::<SplayTree>(&trace, window);
            let boundaries = detect_phases(&analysis, threshold);
            proptest::prop_assert!(
                boundaries.iter().all(|&b| b <= window),
                "boundaries past warmup on a stationary trace: {boundaries:?}"
            );
        }

        /// Raising the threshold can only remove boundaries: for any trace,
        /// detect_phases at a higher threshold yields a subset.
        #[test]
        fn boundaries_are_monotone_in_threshold(
            trace in proptest::collection::vec(0u64..400, 100..2000),
            window in 32usize..256,
        ) {
            let analysis = windowed_histograms::<SplayTree>(&trace, window);
            let loose = detect_phases(&analysis, 0.2);
            let strict = detect_phases(&analysis, 0.7);
            proptest::prop_assert!(
                strict.iter().all(|b| loose.contains(b)),
                "strict {strict:?} not a subset of loose {loose:?}"
            );
        }
    }

    #[test]
    fn phase_transition_is_detected_at_the_right_place() {
        // Phase 1: tight loop over 8 addresses (distances ≤ 7).
        // Phase 2 (starting at ref 4000): sweep over 2048 addresses
        // (distances ≥ 2047 after warmup) — a gross signature change.
        let mut trace: Vec<Addr> = (0..4000).map(|i| i % 8).collect();
        trace.extend((0..4000).map(|i| 1000 + i % 2048));
        let analysis = windowed_histograms::<SplayTree>(&trace, 500);
        let boundaries = detect_phases(&analysis, 0.5);
        assert!(
            boundaries.contains(&4000),
            "expected a boundary at 4000, got {boundaries:?}"
        );
        // No boundaries deep inside phase 1.
        assert!(
            !boundaries.iter().any(|&b| (1000..4000).contains(&b)),
            "phase 1 must be stable: {boundaries:?}"
        );
    }
}

//! The unified analysis entry point: [`Analysis`].
//!
//! Every engine in this crate — sequential (Algorithm 1), naïve stack
//! (§III-A), parallel (Algorithm 3), streaming multi-phase (Algorithms 5–6),
//! and sampling (§VII) — is reachable through one builder, with runtime tree
//! selection and an optional observability [`Report`]:
//!
//! ```
//! use parda_core::{Analysis, Mode};
//! use parda_tree::TreeKind;
//!
//! let trace: Vec<u64> = (0..1000u64).map(|i| i % 50).collect();
//! let (hist, report) = Analysis::new()
//!     .tree(TreeKind::Splay)
//!     .ranks(4)
//!     .mode(Mode::Threads)
//!     .stats(true)
//!     .run(&trace);
//! assert_eq!(hist.total(), 1000);
//! let report = report.unwrap();
//! assert_eq!(report.total_rank_refs(), 1000);
//! assert_eq!(report.per_rank.len(), 4);
//! ```
//!
//! The legacy free functions ([`crate::seq::analyze_sequential`],
//! [`crate::parallel::parda_threads`], …) remain the low-level API; this
//! builder is a front door that picks the engine, threads the configuration
//! through, and aggregates the per-rank metrics into a [`Report`]. The
//! histograms are bit-identical to the direct calls (property-tested).

use crate::approx::{ApproxMode, ApproxSketch, SampleRate};
use crate::error::{FaultPolicy, PardaError};
use crate::parallel::PardaConfig;
use crate::phased::Reduction;
use parda_hist::ReuseHistogram;
use parda_obs::{EngineMetrics, PhasedMetrics, RankMetrics, Report, Stopwatch, StreamMetrics};
use parda_trace::stream::FramedStream;
use parda_trace::{Addr, AddressStream, Degradation, SliceStream};
use parda_tree::TreeKind;
use std::path::Path;

/// Monomorphize a block over the runtime-selected [`TreeKind`]: binds the
/// concrete tree type to `$T` inside `$body`.
macro_rules! dispatch_tree {
    ($kind:expr, $T:ident, $body:block) => {
        match $kind {
            TreeKind::Splay => {
                type $T = parda_tree::SplayTree;
                $body
            }
            TreeKind::Avl => {
                type $T = parda_tree::AvlTree;
                $body
            }
            TreeKind::Treap => {
                type $T = parda_tree::Treap;
                $body
            }
            TreeKind::Vector => {
                type $T = parda_tree::VectorTree;
                $body
            }
        }
    };
}

/// Which engine [`Analysis::run`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Algorithm 1: sequential tree-based analysis.
    Seq,
    /// §III-A: the O(N·M) naïve stack baseline (ignores tree/ranks/bound).
    Naive,
    /// Algorithm 3 via the shared-memory driver
    /// ([`crate::parallel::parda_threads`]).
    Threads,
    /// Algorithm 3 via the literal message-passing driver
    /// ([`crate::parallel::parda_msg`]).
    Msg,
    /// Algorithms 5–6: streaming multi-phase analysis.
    Phased {
        /// References per rank per phase (`C`).
        chunk: usize,
        /// State-reduction strategy (Algorithm 6 or the renumbering
        /// enhancement).
        reduction: Reduction,
    },
    /// §VII: spatial-sampling approximation at rate `2^-rate_log2`.
    Sampled {
        /// Sampling rate exponent `k` (rate `2^-k`; 0 is exact).
        rate_log2: u32,
    },
}

impl Mode {
    /// Stable label used in reports and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Seq => "seq",
            Mode::Naive => "naive",
            Mode::Threads => "parda-threads",
            Mode::Msg => "parda-msg",
            Mode::Phased { .. } => "phased",
            Mode::Sampled { .. } => "sampled",
        }
    }

    /// Streaming chunk size with the [`Mode::Phased`] default for other
    /// modes.
    fn phase_chunk(&self) -> usize {
        match self {
            Mode::Phased { chunk, .. } => *chunk,
            _ => 65_536,
        }
    }

    fn reduction(&self) -> Reduction {
        match self {
            Mode::Phased { reduction, .. } => *reduction,
            _ => Reduction::ShipToRankZero,
        }
    }
}

impl Default for Mode {
    /// The paper's headline configuration: parallel Parda over threads.
    fn default() -> Self {
        Mode::Threads
    }
}

/// Builder for a reuse-distance analysis run.
///
/// Construct with [`Analysis::new`], chain configuration, finish with
/// [`Analysis::run`] (an in-memory trace) or [`Analysis::run_stream`] (an
/// [`AddressStream`], driven by the streaming engine). Both return the
/// histogram plus `Some(Report)` when [`Analysis::stats`] was enabled.
#[derive(Clone, Debug)]
pub struct Analysis {
    tree: TreeKind,
    mode: Mode,
    approx: ApproxMode,
    ranks: Option<usize>,
    bound: Option<u64>,
    space_optimized: bool,
    subchunk_refs: Option<usize>,
    stats: bool,
    fault: FaultPolicy,
}

impl Default for Analysis {
    fn default() -> Self {
        Self::new()
    }
}

impl Analysis {
    /// A default analysis: splay tree, [`Mode::Threads`], hardware rank
    /// count, unbounded, space-optimized, no stats.
    pub fn new() -> Self {
        Self {
            tree: TreeKind::Splay,
            mode: Mode::default(),
            approx: ApproxMode::Exact,
            ranks: None,
            bound: None,
            space_optimized: true,
            subchunk_refs: None,
            stats: false,
            fault: FaultPolicy::default(),
        }
    }

    /// Select the balanced-tree implementation (Algorithm 2 substrate).
    pub fn tree(mut self, tree: TreeKind) -> Self {
        self.tree = tree;
        self
    }

    /// Select the engine.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Select an approximate (constant-space sketch) engine instead of the
    /// exact trees: SHARDS fixed-rate/fixed-size or AET (see
    /// [`crate::approx`]). [`ApproxMode::Exact`] (the default) routes to
    /// the engine chosen by [`Analysis::mode`]; any other value supersedes
    /// it, runs single-rank, and attaches
    /// [`ApproxMetrics`](parda_obs::ApproxMetrics) to the [`Report`].
    ///
    /// # Panics
    ///
    /// On a degenerate configuration (rate outside (0, 1], zero `s_max`).
    pub fn approx(mut self, approx: ApproxMode) -> Self {
        approx.validate();
        self.approx = approx;
        self
    }

    /// Number of ranks `np` for the parallel/streaming engines. Defaults to
    /// the hardware parallelism.
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Cache bound `B` (Algorithm 7). Accepts `u64` or `Option<u64>`.
    pub fn bound(mut self, bound: impl Into<Option<u64>>) -> Self {
        self.bound = bound.into();
        self
    }

    /// Toggle the Algorithm 4 space optimization (on by default; turning it
    /// off reproduces plain Algorithm 3 for the ablation).
    pub fn space_optimized(mut self, on: bool) -> Self {
        self.space_optimized = on;
        self
    }

    /// Override the [`Mode::Threads`] work-stealing sub-chunk grain
    /// ([`PardaConfig::subchunk_refs`]); `None` keeps the default.
    pub fn subchunk_refs(mut self, refs: impl Into<Option<usize>>) -> Self {
        self.subchunk_refs = refs.into();
        self
    }

    /// Collect an observability [`Report`] (per-rank timing breakdown,
    /// cascade/stream counters).
    pub fn stats(mut self, on: bool) -> Self {
        self.stats = on;
        self
    }

    /// How [`Analysis::run_file`] treats corrupt trace input (default
    /// [`Degradation::Strict`]): fail, repair, or salvage best-effort.
    pub fn degradation(mut self, policy: Degradation) -> Self {
        self.fault.degradation = policy;
        self
    }

    /// Full fault policy for [`Analysis::run_file`] /
    /// [`Analysis::run_faulted`]: degradation ladder plus worker-panic
    /// retry budget and watchdog deadline.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault = policy;
        self
    }

    /// Accessors used by the resumable session driver
    /// ([`crate::session`]) to pick and configure its internal engine.
    pub(crate) fn tree_kind(&self) -> TreeKind {
        self.tree
    }

    pub(crate) fn mode_kind(&self) -> Mode {
        self.mode
    }

    pub(crate) fn approx_mode(&self) -> ApproxMode {
        self.approx
    }

    pub(crate) fn ranks_opt(&self) -> Option<usize> {
        self.ranks
    }

    pub(crate) fn bound_opt(&self) -> Option<u64> {
        self.bound
    }

    pub(crate) fn stats_on(&self) -> bool {
        self.stats
    }

    /// The [`PardaConfig`] this builder resolves to.
    pub fn config(&self) -> PardaConfig {
        let mut config = PardaConfig::default();
        if let Some(ranks) = self.ranks {
            config.ranks = ranks;
        }
        config.bound = self.bound;
        config.space_optimized = self.space_optimized;
        config.subchunk_refs = self.subchunk_refs;
        config
    }

    /// Ranks actually used: 1 for the sequential engines, `np` otherwise.
    fn effective_ranks(&self, config: &PardaConfig) -> usize {
        match self.mode {
            Mode::Seq | Mode::Naive | Mode::Sampled { .. } => 1,
            _ => config.ranks.max(1),
        }
    }

    /// Analyze an in-memory trace.
    pub fn run(&self, trace: &[Addr]) -> (ReuseHistogram, Option<Report>) {
        if !self.approx.is_exact() {
            let sw = Stopwatch::start();
            let mut sketch = ApproxSketch::new(self.approx);
            sketch.update(trace);
            return self.finish_approx(&sketch, trace.len() as u64, sw.ns());
        }
        let config = self.config();
        let sw = Stopwatch::start();
        let (hist, per_rank, phased) =
            dispatch_tree!(self.tree, T, { self.run_typed::<T>(trace, &config) });
        self.finish(hist, per_rank, phased, None, trace.len() as u64, sw.ns())
    }

    /// Analyze an address stream with the streaming multi-phase engine
    /// (the only engine that does not need the whole trace in memory).
    ///
    /// [`Mode::Phased`] supplies the phase chunk size and reduction
    /// strategy; any other mode streams with the defaults (`C = 65536`,
    /// ship-to-rank-zero) and is reported as `phased-stream`.
    pub fn run_stream<S>(&self, source: S) -> (ReuseHistogram, Option<Report>)
    where
        S: AddressStream + Send,
    {
        if !self.approx.is_exact() {
            return self.run_approx_stream(source);
        }
        let config = self.config();
        let sw = Stopwatch::start();
        let (hist, per_rank, phased) = dispatch_tree!(self.tree, T, {
            crate::phased::parda_phased_with_stats::<T, S>(
                source,
                self.mode.phase_chunk(),
                &config,
                self.mode.reduction(),
            )
        });
        let refs = per_rank.iter().map(|r| r.refs).sum();
        let total_ns = sw.ns();
        if !self.stats {
            return (hist, None);
        }
        let report = Report {
            mode: "phased-stream".into(),
            tree: self.tree.name().into(),
            ranks: config.ranks.max(1),
            bound: self.bound,
            trace_refs: refs,
            total_ns,
            per_rank,
            stream: None,
            phased: Some(phased),
            recovery: None,
            approx: None,
            shared: None,
        };
        (hist, Some(report))
    }

    /// Drain an address stream through the sketch in fixed-size gulps —
    /// the approximate engines never need the whole trace in memory.
    fn run_approx_stream<S: AddressStream>(
        &self,
        mut source: S,
    ) -> (ReuseHistogram, Option<Report>) {
        const GULP: usize = 65_536;
        let sw = Stopwatch::start();
        let mut sketch = ApproxSketch::new(self.approx);
        let mut buf = Vec::with_capacity(GULP);
        let mut refs = 0u64;
        loop {
            buf.clear();
            let n = source.fill(&mut buf, GULP);
            if n == 0 {
                break;
            }
            refs += n as u64;
            sketch.update(&buf);
        }
        self.finish_approx(&sketch, refs, sw.ns())
    }

    pub(crate) fn finish_approx(
        &self,
        sketch: &ApproxSketch,
        trace_refs: u64,
        total_ns: u64,
    ) -> (ReuseHistogram, Option<Report>) {
        let hist = sketch.finalize();
        if !self.stats {
            return (hist, None);
        }
        let report = Report {
            mode: self.approx.name().into(),
            tree: self.tree.name().into(),
            ranks: 1,
            bound: self.bound,
            trace_refs,
            total_ns,
            per_rank: vec![untimed_rank_metrics(trace_refs, &hist, total_ns)],
            stream: None,
            phased: None,
            recovery: None,
            approx: Some(sketch.metrics()),
            shared: None,
        };
        (hist, Some(report))
    }

    /// Analyze an in-memory trace with fault isolation.
    ///
    /// For [`Mode::Threads`] this drives
    /// [`crate::parallel::parda_threads_faulted`]: panicking rank workers
    /// are caught and rescued with the scalar reference engine under the
    /// builder's [`FaultPolicy`] (bit-identical histogram on success), and
    /// a configured watchdog converts a stalled cascade wait into
    /// [`PardaError::Stall`]. Other modes run unchanged — their engines
    /// are single-threaded or message-passing and a panic there is a
    /// programming error that should surface.
    pub fn run_faulted(
        &self,
        trace: &[Addr],
    ) -> Result<(ReuseHistogram, Option<Report>), PardaError> {
        if self.mode != Mode::Threads || !self.approx.is_exact() {
            return Ok(self.run(trace));
        }
        let config = self.config();
        let sw = Stopwatch::start();
        let (hist, per_rank, recovery) = dispatch_tree!(self.tree, T, {
            crate::parallel::parda_threads_faulted::<T>(trace, &config, &self.fault)
        })?;
        let (hist, mut report) =
            self.finish(hist, per_rank, None, None, trace.len() as u64, sw.ns());
        if let Some(r) = report.as_mut() {
            r.recovery = Some(recovery);
        }
        Ok((hist, report))
    }

    /// Analyze a trace file end to end under the builder's fault policy.
    ///
    /// This is the fault-tolerant front door: it decodes (or streams) the
    /// file honouring [`Analysis::degradation`], runs the selected engine
    /// with panic isolation ([`Analysis::run_faulted`]), and attaches the
    /// combined [`parda_obs::RecoveryMetrics`] — corrupt frames skipped, references
    /// dropped, CRC failures, rank rescues — to the [`Report`] when stats
    /// are enabled.
    ///
    /// * [`Mode::Phased`] on a v2 file streams frames through
    ///   [`FramedStream`] with the degradation policy applied per frame;
    ///   if the file's footer/index is too damaged to open and the policy
    ///   is [`Degradation::BestEffort`], it falls back to an in-memory
    ///   resync-scan salvage.
    /// * Every other mode (and every v1 file) decodes in memory via
    ///   [`parda_trace::decode_trace_recovering`].
    ///
    /// Under [`Degradation::Strict`] any integrity violation aborts with
    /// [`PardaError::Corrupt`]; the lossy policies return the exact
    /// analysis of the surviving frames.
    pub fn run_file<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<(ReuseHistogram, Option<Report>), PardaError> {
        let path = path.as_ref();
        let degradation = self.fault.degradation;

        // Major format version 2 is the framed, seekable, streamable one.
        // Sketch modes always stream it: constant-space analysis should
        // not buffer the whole trace either.
        if (matches!(self.mode, Mode::Phased { .. }) || !self.approx.is_exact())
            && parda_trace::io::peek_version(path)? == 2
        {
            match FramedStream::open_with_policy(path, stream_decoders(), degradation) {
                Ok(stream) => {
                    let errors = stream.error_handle();
                    let recovery = stream.recovery_handle();
                    let (hist, mut report) = self.run_stream(stream);
                    // A strict-mode decode failure terminates the stream
                    // early; surface it instead of a silently short
                    // histogram.
                    if let Some(e) = errors.take() {
                        return Err(e.into());
                    }
                    let rec = recovery.lock().unwrap_or_else(|e| e.into_inner()).clone();
                    if let Some(r) = report.as_mut() {
                        r.recovery = Some(rec);
                    }
                    return Ok((hist, report));
                }
                // Destroyed footer/index: only the bottom of the ladder
                // may salvage without it.
                Err(_) if degradation == Degradation::BestEffort => {}
                Err(e) => return Err(e.into()),
            }
        }

        let (trace, rec) = parda_trace::load_trace_recovering(path, degradation)?;
        let (hist, mut report) = self.run_faulted(trace.as_slice())?;
        if let Some(r) = report.as_mut() {
            match r.recovery.as_mut() {
                Some(existing) => existing.merge(&rec),
                None => r.recovery = Some(rec),
            }
        }
        Ok((hist, report))
    }

    /// One engine run with a concrete tree type.
    fn run_typed<T: parda_tree::ReuseTree + Default + Send>(
        &self,
        trace: &[Addr],
        config: &PardaConfig,
    ) -> (ReuseHistogram, Vec<RankMetrics>, Option<PhasedMetrics>) {
        match self.mode {
            Mode::Seq => {
                let (hist, rm) = crate::seq::analyze_sequential_with_stats::<T>(trace, self.bound);
                (hist, vec![rm], None)
            }
            Mode::Naive => {
                let sw = Stopwatch::start();
                let hist = crate::seq::analyze_naive(trace);
                let rm = untimed_rank_metrics(trace.len() as u64, &hist, sw.ns());
                (hist, vec![rm], None)
            }
            Mode::Threads => {
                let (hist, ranks) = crate::parallel::parda_threads_with_stats::<T>(trace, config);
                (hist, ranks, None)
            }
            Mode::Msg => {
                let (hist, ranks) = crate::parallel::parda_msg_with_stats::<T>(trace, config);
                (hist, ranks, None)
            }
            Mode::Phased { chunk, reduction } => {
                let (hist, ranks, phased) = crate::phased::parda_phased_with_stats::<T, _>(
                    SliceStream::new(trace),
                    chunk,
                    config,
                    reduction,
                );
                (hist, ranks, Some(phased))
            }
            Mode::Sampled { rate_log2 } => {
                let sw = Stopwatch::start();
                // Historical pow-2 spatial sampling, kept bit-exact: filter
                // to monitored addresses, scale distances and counts by the
                // inverse rate, no SHARDS-adj correction.
                let rate = SampleRate::one_in_pow2(rate_log2);
                let scale = rate.inverse();
                let monitored: Vec<Addr> = trace
                    .iter()
                    .copied()
                    .filter(|&a| rate.monitors(a))
                    .collect();
                let mut hist = ReuseHistogram::new();
                crate::seq::analyze_with::<T, _>(&monitored, |_, _, distance| match distance {
                    parda_hist::Distance::Finite(d) => hist.record_finite_n(d * scale, scale),
                    parda_hist::Distance::Infinite => hist.record_infinite_n(scale),
                });
                let rm = untimed_rank_metrics(trace.len() as u64, &hist, sw.ns());
                (hist, vec![rm], None)
            }
        }
    }

    fn finish(
        &self,
        hist: ReuseHistogram,
        per_rank: Vec<RankMetrics>,
        phased: Option<PhasedMetrics>,
        stream: Option<StreamMetrics>,
        trace_refs: u64,
        total_ns: u64,
    ) -> (ReuseHistogram, Option<Report>) {
        if !self.stats {
            return (hist, None);
        }
        let config = self.config();
        let report = Report {
            mode: self.mode.name().into(),
            tree: self.tree.name().into(),
            ranks: self.effective_ranks(&config),
            bound: self.bound,
            trace_refs,
            total_ns,
            per_rank,
            stream,
            phased,
            recovery: None,
            approx: None,
            shared: None,
        };
        (hist, Some(report))
    }
}

/// Decoder-thread count for [`Analysis::run_file`]'s streaming path —
/// the same default [`FramedStream::open`] uses.
fn stream_decoders() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Rank metrics for the engines without internal instrumentation (naïve
/// stack, sampling estimator): the whole run is one rank-0 "chunk", and the
/// operation counts are reconstructed from the histogram.
fn untimed_rank_metrics(refs: u64, hist: &ReuseHistogram, ns: u64) -> RankMetrics {
    RankMetrics {
        rank: 0,
        refs,
        chunk_ns: ns,
        engine: EngineMetrics {
            refs,
            finite_hits: hist.finite_total(),
            cold_misses: hist.infinite(),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{analyze_naive, analyze_sequential};
    use parda_tree::SplayTree;
    use proptest::prelude::*;

    #[test]
    fn builder_defaults_run() {
        let trace: Vec<Addr> = (0..500).map(|i| (i * 7) % 61).collect();
        let (hist, report) = Analysis::new().run(&trace);
        assert_eq!(hist, analyze_sequential::<SplayTree>(&trace, None));
        assert!(report.is_none(), "stats are opt-in");
    }

    #[test]
    fn report_refs_partition_the_trace() {
        let trace: Vec<Addr> = (0..1000).map(|i| (i * 13) % 97).collect();
        let (hist, report) = Analysis::new()
            .ranks(8)
            .mode(Mode::Msg)
            .stats(true)
            .run(&trace);
        let report = report.unwrap();
        assert_eq!(report.per_rank.len(), 8);
        assert_eq!(report.total_rank_refs(), 1000);
        assert_eq!(report.mode, "parda-msg");
        // Rank 0 owns every global infinity: its cold misses are exactly
        // the histogram's ∞ count.
        assert_eq!(report.per_rank[0].engine.cold_misses, hist.infinite());
        for rm in &report.per_rank[1..] {
            assert_eq!(
                rm.engine.cold_misses, 0,
                "rank {} forwards, never records",
                rm.rank
            );
        }
    }

    #[test]
    fn threads_and_msg_agree_on_forwarded_totals() {
        let trace: Vec<Addr> = (0..2000).map(|i| (i * 31) % 257).collect();
        let (h1, r1) = Analysis::new()
            .ranks(4)
            .mode(Mode::Threads)
            .stats(true)
            .run(&trace);
        let (h2, r2) = Analysis::new()
            .ranks(4)
            .mode(Mode::Msg)
            .stats(true)
            .run(&trace);
        assert_eq!(h1, h2);
        let (r1, r2) = (r1.unwrap(), r2.unwrap());
        assert_eq!(
            r1.total_infinities_forwarded(),
            r2.total_infinities_forwarded(),
            "same cascade traffic regardless of transport"
        );
        for (a, b) in r1.per_rank.iter().zip(&r2.per_rank) {
            assert_eq!(a.engine.finite_hits, b.engine.finite_hits);
            assert_eq!(a.engine.cold_misses, b.engine.cold_misses);
            assert_eq!(a.infinities_forwarded, b.infinities_forwarded);
        }
    }

    #[test]
    fn phased_mode_reports_phase_metrics() {
        // 620 refs with np·C = 150: four full phases plus a ragged fifth,
        // whose short read marks it as last (skipping the final reduction).
        let trace: Vec<Addr> = (0..620).map(|i| i % 40).collect();
        let (hist, report) = Analysis::new()
            .ranks(3)
            .mode(Mode::Phased {
                chunk: 50,
                reduction: Reduction::RenumberRanks,
            })
            .stats(true)
            .run(&trace);
        assert_eq!(hist, analyze_sequential::<SplayTree>(&trace, None));
        let report = report.unwrap();
        assert_eq!(report.total_rank_refs(), 620);
        let phased = report.phased.expect("phased mode sets phase metrics");
        assert_eq!(phased.phases, 5, "ceil(620 / 150) = 5 phases");
        assert_eq!(phased.phase_reduction_ns.len(), 5);
        assert_eq!(
            *phased.phase_reduction_ns.last().unwrap(),
            0,
            "the last phase skips the reduction"
        );
    }

    #[test]
    fn run_stream_matches_run() {
        let trace: Vec<Addr> = (0..1500).map(|i| (i * 11) % 113).collect();
        let builder = Analysis::new().ranks(4).stats(true);
        let (h1, _) = builder.run(&trace);
        let (h2, report) = builder.run_stream(SliceStream::new(&trace));
        assert_eq!(h1, h2);
        let report = report.unwrap();
        assert_eq!(report.mode, "phased-stream");
        assert_eq!(report.trace_refs, 1500);
    }

    #[test]
    fn naive_and_sampled_report_single_rank() {
        let trace: Vec<Addr> = (0..300).map(|i| i % 20).collect();
        let (hist, report) = Analysis::new().mode(Mode::Naive).stats(true).run(&trace);
        assert_eq!(hist, analyze_naive(&trace));
        let report = report.unwrap();
        assert_eq!(report.ranks, 1);
        assert_eq!(report.per_rank.len(), 1);
        assert_eq!(report.per_rank[0].engine.finite_hits, hist.finite_total());

        let (exact, report) = Analysis::new()
            .mode(Mode::Sampled { rate_log2: 0 })
            .stats(true)
            .run(&trace);
        assert_eq!(exact, analyze_naive(&trace), "rate 2^-0 is exact");
        assert_eq!(report.unwrap().mode, "sampled");
    }

    #[test]
    fn approx_mode_supersedes_engine_choice() {
        let trace: Vec<Addr> = (0..5_000).map(|i| (i * 13) % 700).collect();
        let builder = Analysis::new()
            .ranks(4)
            .mode(Mode::Threads)
            .approx(ApproxMode::ShardsFixedRate { rate: 1.0 })
            .stats(true);
        let (hist, report) = builder.run(&trace);
        assert_eq!(hist, analyze_sequential::<SplayTree>(&trace, None));
        let report = report.unwrap();
        assert_eq!(report.mode, "shards");
        assert_eq!(report.ranks, 1);
        let approx = report.approx.expect("approx metrics attached");
        assert_eq!(approx.mode, "shards");
        assert_eq!(approx.sampled_refs, 5_000);

        // The streaming entry point drives the same sketch.
        let (streamed, report) = builder.run_stream(SliceStream::new(&trace));
        assert_eq!(streamed, hist);
        let report = report.unwrap();
        assert_eq!(report.mode, "shards");
        assert_eq!(report.trace_refs, 5_000);
        assert!(report.approx.is_some());

        // And matches the one-shot helper for every mode.
        for mode in [
            ApproxMode::ShardsFixedRate { rate: 0.25 },
            ApproxMode::ShardsFixedSize { s_max: 256 },
            ApproxMode::Aet { rate: 0.5 },
        ] {
            let (h1, _) = Analysis::new().approx(mode).run(&trace);
            let (h2, _) = crate::approx::analyze_approx(&trace, mode);
            assert_eq!(h1, h2, "{mode}");
            let (h3, _) = Analysis::new()
                .approx(mode)
                .run_stream(SliceStream::new(&trace));
            assert_eq!(h1, h3, "{mode} streamed");
        }
    }

    #[test]
    fn approx_run_file_streams_v2() {
        use parda_trace::io::{write_trace_v2_framed, Encoding};
        let trace: Vec<Addr> = (0..4_096).map(|i| (i * 7) % 311).collect();
        let path = tmp("approx-v21.bin");
        let f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(
            f,
            &parda_trace::Trace::from_vec(trace.clone()),
            Encoding::Raw,
            64,
        )
        .unwrap();
        let mode = ApproxMode::ShardsFixedRate { rate: 0.5 };
        let (expect, _) = Analysis::new().approx(mode).run(&trace);
        let (hist, report) = Analysis::new()
            .approx(mode)
            .stats(true)
            .run_file(&path)
            .unwrap();
        assert_eq!(hist, expect, "streamed file analysis matches in-memory");
        assert!(report.unwrap().approx.is_some());
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("parda-core-analysis-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// v2.1 Raw layout: 24-byte header, then per frame a 12-byte inline
    /// header followed by `refs × 8` payload bytes.
    fn raw_v21_payload_offset(frame: usize, frame_refs: usize) -> usize {
        24 + frame * (12 + frame_refs * 8) + 12
    }

    #[test]
    fn run_faulted_matches_run_for_threads() {
        let trace: Vec<Addr> = (0..1_200).map(|i| (i * 17) % 101).collect();
        let builder = Analysis::new().ranks(4).stats(true);
        let (h1, _) = builder.run(&trace);
        let (h2, report) = builder.run_faulted(&trace).unwrap();
        assert_eq!(h1, h2);
        let recovery = report
            .unwrap()
            .recovery
            .expect("faulted run attaches recovery");
        assert_eq!(recovery.rank_retries, 0);
        assert!(recovery.is_clean());
    }

    #[test]
    fn run_file_strict_matches_in_memory_run() {
        use parda_trace::io::{write_trace_v2_framed, Encoding};
        let trace: Vec<Addr> = (0..640).map(|i| (i * 7) % 73).collect();
        let path = tmp("clean-v21.bin");
        let f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(
            f,
            &parda_trace::Trace::from_vec(trace.clone()),
            Encoding::Raw,
            64,
        )
        .unwrap();

        let (expect, _) = Analysis::new().ranks(3).run(&trace);
        let (hist, _) = Analysis::new().ranks(3).run_file(&path).unwrap();
        assert_eq!(hist, expect);

        // The streaming (phased) path reads the same bytes the same way.
        let phased = Analysis::new().ranks(3).mode(Mode::Phased {
            chunk: 50,
            reduction: Reduction::ShipToRankZero,
        });
        let (hist, _) = phased.run_file(&path).unwrap();
        assert_eq!(hist, expect);
    }

    #[test]
    fn run_file_degradation_ladder_on_a_corrupt_frame() {
        use parda_trace::io::{write_trace_v2_framed, Encoding};
        let trace: Vec<Addr> = (0..640).map(|i| (i * 11) % 97).collect();
        let path = tmp("corrupt-v21.bin");
        let f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(
            f,
            &parda_trace::Trace::from_vec(trace.clone()),
            Encoding::Raw,
            64,
        )
        .unwrap();
        // Flip one payload byte in frame 3: its CRC no longer matches.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[raw_v21_payload_offset(3, 64) + 5] ^= 0xA5;
        std::fs::write(&path, &bytes).unwrap();

        // Strict: structured corruption error.
        let err = Analysis::new().ranks(3).run_file(&path).unwrap_err();
        assert_eq!(err.class(), "corrupt", "got {err}");

        // Lossy: exactly the analysis of the surviving frames.
        let survivors: Vec<Addr> = trace[..192].iter().chain(&trace[256..]).copied().collect();
        let (expect, _) = Analysis::new().ranks(3).run(&survivors);
        for policy in [Degradation::Repair, Degradation::BestEffort] {
            let (hist, report) = Analysis::new()
                .ranks(3)
                .degradation(policy)
                .stats(true)
                .run_file(&path)
                .unwrap();
            assert_eq!(hist, expect, "{policy:?}");
            let recovery = report.unwrap().recovery.expect("recovery attached");
            assert_eq!(recovery.frames_skipped, 1);
            assert_eq!(recovery.refs_dropped, 64);
            assert_eq!(recovery.crc_failures, 1);
            assert_eq!(recovery.skipped_frames, vec![3]);
        }

        // The streaming path applies the same ladder.
        let phased = Analysis::new()
            .ranks(3)
            .mode(Mode::Phased {
                chunk: 50,
                reduction: Reduction::ShipToRankZero,
            })
            .stats(true);
        let err = phased.run_file(&path).unwrap_err();
        assert_eq!(
            err.class(),
            "corrupt",
            "strict stream surfaces the CRC failure"
        );
        let (hist, report) = phased
            .clone()
            .degradation(Degradation::BestEffort)
            .run_file(&path)
            .unwrap();
        assert_eq!(hist, expect);
        let recovery = report.unwrap().recovery.expect("recovery attached");
        assert_eq!(recovery.frames_skipped, 1);
        assert_eq!(recovery.refs_dropped, 64);
    }

    #[test]
    fn run_file_missing_file_is_an_io_error() {
        let err = Analysis::new()
            .run_file(tmp("definitely-not-here.bin"))
            .unwrap_err();
        assert_eq!(err.class(), "io");
    }

    proptest! {
        /// The builder is bit-identical to the legacy entry points for
        /// every mode, trace, tree, rank count, and bound.
        #[test]
        fn builder_matches_legacy_entry_points(
            trace in proptest::collection::vec(0u64..48, 0..300),
            np in 1usize..6,
            bound_raw in 0u64..32,
            chunk in 1usize..40,
        ) {
            // 0 means unbounded (the shim proptest has no option strategy).
            let bound = (bound_raw >= 4).then_some(bound_raw);
            let config = PardaConfig { bound, ..PardaConfig::with_ranks(np) };
            let base = Analysis::new().ranks(np).bound(bound);

            prop_assert_eq!(
                base.clone().mode(Mode::Seq).run(&trace).0,
                analyze_sequential::<SplayTree>(&trace, bound)
            );
            prop_assert_eq!(
                base.clone().mode(Mode::Threads).run(&trace).0,
                crate::parallel::parda_threads::<SplayTree>(&trace, &config)
            );
            prop_assert_eq!(
                base.clone().mode(Mode::Msg).run(&trace).0,
                crate::parallel::parda_msg::<SplayTree>(&trace, &config)
            );
            let reduction = Reduction::ShipToRankZero;
            prop_assert_eq!(
                base.clone().mode(Mode::Phased { chunk, reduction }).run(&trace).0,
                crate::phased::parda_phased_with::<SplayTree, _>(
                    SliceStream::new(&trace), chunk, &config, reduction,
                )
            );
            prop_assert_eq!(
                base.mode(Mode::Naive).run(&trace).0,
                analyze_naive(&trace)
            );
        }
    }
}

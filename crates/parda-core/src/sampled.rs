//! Legacy sampling entry points — thin deprecated shims over
//! [`approx`](crate::approx).
//!
//! The paper positions Parda as complementary to the approximation line of
//! work (§VII); this module was the original pow-2-only spatial-sampling
//! seed. It has grown into the full [`crate::approx`] subsystem (arbitrary
//! rates, the SHARDS-adj correction, fixed-size eviction, AET), routed
//! through the [`Analysis`](crate::Analysis) builder:
//!
//! ```
//! use parda_core::{Analysis, ApproxMode};
//! # let trace: Vec<u64> = (0..1000).map(|i| i % 37).collect();
//! let (hist, _) = Analysis::new()
//!     .approx(ApproxMode::ShardsFixedRate { rate: 0.25 })
//!     .run(&trace);
//! ```
//!
//! [`SampleRate`] itself now lives in `approx` (re-exported here) and
//! supports any rate in (0, 1]; the pow-2 constructor and the functions
//! below keep their historical behavior bit-for-bit.

use crate::seq::analyze_with;
use parda_hist::{Distance, ReuseHistogram};
use parda_trace::Addr;
use parda_tree::ReuseTree;

pub use crate::approx::SampleRate;

/// Filter a trace down to its monitored references.
#[deprecated(
    since = "0.1.0",
    note = "use `Analysis::approx` with `ApproxMode::ShardsFixedRate`, or \
            `SampleRate::monitors` directly"
)]
pub fn sample_filter(trace: &[Addr], rate: SampleRate) -> Vec<Addr> {
    trace
        .iter()
        .copied()
        .filter(|&a| rate.monitors(a))
        .collect()
}

/// Approximate whole-trace reuse distance analysis by spatial sampling.
///
/// Returns an *estimated* histogram: distances and counts are scaled by the
/// inverse sampling rate. Cold misses (∞) are likewise scaled. No
/// correction term is applied — prefer
/// [`analyze_approx`](crate::approx::analyze_approx), which also supports
/// non-pow-2 rates, fixed-size sketches, and AET.
///
/// # Examples
///
/// ```
/// use parda_core::sampled::{analyze_sampled, SampleRate};
/// use parda_trace::gen::{ReuseProfile, StackDistGen};
/// use parda_trace::AddressStream;
///
/// let trace = StackDistGen::new(150_000, 8_000, ReuseProfile::geometric(64.0), 3)
///     .take_trace(150_000);
/// let exact = parda_core::seq::analyze_sequential::<parda_tree::SplayTree>(
///     trace.as_slice(), None);
/// # #[allow(deprecated)]
/// let approx = analyze_sampled::<parda_tree::SplayTree>(
///     trace.as_slice(), SampleRate::one_in_pow2(4));
///
/// // The estimated miss ratio tracks the exact one.
/// let err = (approx.miss_ratio(1024) - exact.miss_ratio(1024)).abs();
/// assert!(err < 0.06, "MRC error {err}");
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Analysis::approx` with `ApproxMode::ShardsFixedRate`, or \
            `approx::analyze_approx`"
)]
pub fn analyze_sampled<T: ReuseTree + Default>(trace: &[Addr], rate: SampleRate) -> ReuseHistogram {
    let scale = rate.inverse();
    #[allow(deprecated)]
    let sampled = sample_filter(trace, rate);
    let mut estimate = ReuseHistogram::new();
    analyze_with::<T, _>(&sampled, |_, _, distance| match distance {
        Distance::Finite(d_s) => estimate.record_finite_n(d_s * scale, scale),
        Distance::Infinite => estimate.record_infinite_n(scale),
    });
    estimate
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_trace::gen::{ReuseProfile, StackDistGen, ZipfGen};
    use parda_trace::AddressStream;
    use parda_tree::SplayTree;

    #[test]
    fn rate_one_is_exact() {
        let trace: Vec<Addr> = (0..2_000).map(|i| (i * 7) % 131).collect();
        let exact = analyze_sequential::<SplayTree>(&trace, None);
        let sampled = analyze_sampled::<SplayTree>(&trace, SampleRate::one_in_pow2(0));
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampling_rate_selects_expected_fraction() {
        let addrs: Vec<Addr> = (0..100_000).map(|i| 0x1000 + i * 8).collect();
        for k in [1u32, 3, 5] {
            let rate = SampleRate::one_in_pow2(k);
            let kept = addrs.iter().filter(|&&a| rate.monitors(a)).count() as f64;
            let expect = addrs.len() as f64 / rate.inverse() as f64;
            assert!(
                (kept - expect).abs() / expect < 0.1,
                "k={k}: kept {kept}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn estimated_totals_track_trace_length() {
        // Uniform popularity: every address carries similar reference mass,
        // so the count estimator concentrates (rel. std ≈ √((1/R−1)/m_s)).
        // Skewed workloads estimate *ratios* well but totals noisily — that
        // is inherent to spatial sampling, not a bug.
        let trace = parda_trace::gen::UniformGen::new(5_000, 0, 2).take_trace(100_000);
        let approx = analyze_sampled::<SplayTree>(trace.as_slice(), SampleRate::one_in_pow2(2));
        let rel = (approx.total() as f64 - trace.len() as f64).abs() / trace.len() as f64;
        assert!(rel < 0.15, "estimated N off by {rel}");
    }

    #[test]
    fn estimated_mrc_tracks_exact_mrc() {
        // A locality-rich workload where the MRC has real structure.
        let trace =
            StackDistGen::new(150_000, 8_000, ReuseProfile::geometric(64.0), 3).take_trace(150_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let approx = analyze_sampled::<SplayTree>(trace.as_slice(), SampleRate::one_in_pow2(4));
        for cap in [16u64, 64, 256, 1024, 4096, 16384] {
            let err = (approx.miss_ratio(cap) - exact.miss_ratio(cap)).abs();
            assert!(err < 0.06, "capacity {cap}: MRC error {err}");
        }
    }

    #[test]
    fn coarser_rates_monitor_fewer_addresses() {
        let trace = ZipfGen::new(20_000, 0.7, 0, 9).take_trace(50_000);
        let fine = sample_filter(trace.as_slice(), SampleRate::one_in_pow2(2)).len();
        let coarse = sample_filter(trace.as_slice(), SampleRate::one_in_pow2(5)).len();
        assert!(coarse < fine, "coarse {coarse} must be < fine {fine}");
        assert!(coarse > 0, "2^-5 of a 20k-address universe is non-empty");
    }

    #[test]
    fn shim_matches_approx_subsystem_monitoring() {
        // The threshold compare in `approx` is bit-identical to the
        // historical top-bits-zero check for pow-2 rates.
        let addrs: Vec<Addr> = (0..10_000).map(|i| i * 13 + 5).collect();
        for k in [0u32, 2, 6] {
            let rate = SampleRate::one_in_pow2(k);
            let via_rate = crate::approx::SampleRate::from_rate(0.5f64.powi(k as i32));
            for &a in &addrs {
                assert_eq!(rate.monitors(a), via_rate.monitors(a), "k={k} addr={a}");
            }
        }
    }
}

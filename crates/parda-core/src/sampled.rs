//! Sampling-based approximate reuse distance analysis.
//!
//! The paper positions Parda as complementary to the approximation line of
//! work (Ding & Zhong's O(N log log M) analysis, Zhong & Chang's and Schuff
//! et al.'s sampling): "our algorithm can be combined with approximate
//! analysis techniques to further improve the performance" (§VII). This
//! module supplies that combination using *spatial hash sampling* (the
//! SHARDS construction): an address is monitored iff its hash falls under a
//! threshold, giving an unbiased rate-R subset of the address space.
//!
//! For a monitored reference with *sampled* reuse distance `d_s` (distinct
//! **monitored** addresses in between), the true distance is estimated as
//! `d_s / R`, and each observation is weighted by `1/R` to estimate
//! whole-trace counts. The estimator converges to the exact histogram as
//! `R → 1` (and is *exactly* the histogram at R = 1, tested).
//!
//! Because sampling only filters the trace, it composes with every engine
//! in this crate — [`analyze_sampled`] runs the sequential engine, and
//! [`sample_filter`] can pre-filter a trace for the parallel or streaming
//! analyzers.

use crate::seq::analyze_with;
use parda_hash::fx_hash_u64;
use parda_hist::{Distance, ReuseHistogram};
use parda_trace::Addr;
use parda_tree::ReuseTree;

/// Spatial sampling rate `R = 2^-rate_log2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleRate {
    rate_log2: u32,
}

impl SampleRate {
    /// Rate `2^-k`. `k = 0` monitors everything (exact analysis).
    pub fn one_in_pow2(k: u32) -> Self {
        assert!(k < 63, "sampling rate 2^-{k} is degenerate");
        Self { rate_log2: k }
    }

    /// The inverse rate `1/R` as an integer scale factor.
    pub fn inverse(self) -> u64 {
        1 << self.rate_log2
    }

    /// `true` if `addr` is monitored under this rate.
    #[inline]
    pub fn monitors(self, addr: Addr) -> bool {
        if self.rate_log2 == 0 {
            return true;
        }
        // Sampled iff the top `rate_log2` hash bits are all zero.
        fx_hash_u64(addr) >> (64 - self.rate_log2) == 0
    }
}

/// Filter a trace down to its monitored references.
pub fn sample_filter(trace: &[Addr], rate: SampleRate) -> Vec<Addr> {
    trace
        .iter()
        .copied()
        .filter(|&a| rate.monitors(a))
        .collect()
}

/// Approximate whole-trace reuse distance analysis by spatial sampling.
///
/// Returns an *estimated* histogram: distances and counts are scaled by the
/// inverse sampling rate. Cold misses (∞) are likewise scaled.
///
/// # Examples
///
/// ```
/// use parda_core::sampled::{analyze_sampled, SampleRate};
/// use parda_trace::gen::{ReuseProfile, StackDistGen};
/// use parda_trace::AddressStream;
///
/// let trace = StackDistGen::new(150_000, 8_000, ReuseProfile::geometric(64.0), 3)
///     .take_trace(150_000);
/// let exact = parda_core::seq::analyze_sequential::<parda_tree::SplayTree>(
///     trace.as_slice(), None);
/// let approx = analyze_sampled::<parda_tree::SplayTree>(
///     trace.as_slice(), SampleRate::one_in_pow2(4));
///
/// // The estimated miss ratio tracks the exact one.
/// let err = (approx.miss_ratio(1024) - exact.miss_ratio(1024)).abs();
/// assert!(err < 0.06, "MRC error {err}");
/// ```
pub fn analyze_sampled<T: ReuseTree + Default>(trace: &[Addr], rate: SampleRate) -> ReuseHistogram {
    let scale = rate.inverse();
    let sampled = sample_filter(trace, rate);
    let mut estimate = ReuseHistogram::new();
    analyze_with::<T, _>(&sampled, |_, _, distance| match distance {
        Distance::Finite(d_s) => estimate.record_finite_n(d_s * scale, scale),
        Distance::Infinite => estimate.record_infinite_n(scale),
    });
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_trace::gen::{ReuseProfile, StackDistGen, ZipfGen};
    use parda_trace::AddressStream;
    use parda_tree::SplayTree;

    #[test]
    fn rate_one_is_exact() {
        let trace: Vec<Addr> = (0..2_000).map(|i| (i * 7) % 131).collect();
        let exact = analyze_sequential::<SplayTree>(&trace, None);
        let sampled = analyze_sampled::<SplayTree>(&trace, SampleRate::one_in_pow2(0));
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampling_rate_selects_expected_fraction() {
        let addrs: Vec<Addr> = (0..100_000).map(|i| 0x1000 + i * 8).collect();
        for k in [1u32, 3, 5] {
            let rate = SampleRate::one_in_pow2(k);
            let kept = addrs.iter().filter(|&&a| rate.monitors(a)).count() as f64;
            let expect = addrs.len() as f64 / rate.inverse() as f64;
            assert!(
                (kept - expect).abs() / expect < 0.1,
                "k={k}: kept {kept}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn estimated_totals_track_trace_length() {
        // Uniform popularity: every address carries similar reference mass,
        // so the count estimator concentrates (rel. std ≈ √((1/R−1)/m_s)).
        // Skewed workloads estimate *ratios* well but totals noisily — that
        // is inherent to spatial sampling, not a bug.
        let trace = parda_trace::gen::UniformGen::new(5_000, 0, 2).take_trace(100_000);
        let approx = analyze_sampled::<SplayTree>(trace.as_slice(), SampleRate::one_in_pow2(2));
        let rel = (approx.total() as f64 - trace.len() as f64).abs() / trace.len() as f64;
        assert!(rel < 0.15, "estimated N off by {rel}");
    }

    #[test]
    fn estimated_mrc_tracks_exact_mrc() {
        // A locality-rich workload where the MRC has real structure.
        let trace =
            StackDistGen::new(150_000, 8_000, ReuseProfile::geometric(64.0), 3).take_trace(150_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let approx = analyze_sampled::<SplayTree>(trace.as_slice(), SampleRate::one_in_pow2(4));
        for cap in [16u64, 64, 256, 1024, 4096, 16384] {
            let err = (approx.miss_ratio(cap) - exact.miss_ratio(cap)).abs();
            assert!(err < 0.06, "capacity {cap}: MRC error {err}");
        }
    }

    #[test]
    fn coarser_rates_monitor_fewer_addresses() {
        let trace = ZipfGen::new(20_000, 0.7, 0, 9).take_trace(50_000);
        let fine = sample_filter(trace.as_slice(), SampleRate::one_in_pow2(2)).len();
        let coarse = sample_filter(trace.as_slice(), SampleRate::one_in_pow2(5)).len();
        assert!(coarse < fine, "coarse {coarse} must be < fine {fine}");
        assert!(coarse > 0, "2^-5 of a 20k-address universe is non-empty");
    }
}

//! The Parda parallel algorithm (paper Algorithm 3, Section IV).
//!
//! The trace is split into `np` contiguous chunks; each rank analyzes its
//! chunk with the sequential engine, collecting *local infinities* — first
//! touches within the chunk — in trace order. Infinity lists cascade
//! leftward rank by rank: hits resolve against the left rank's tree
//! (space-optimized per Algorithm 4), misses are forwarded again, and
//! whatever reaches rank 0 unresolved is a global (compulsory) miss.
//!
//! Two drivers produce identical histograms:
//!
//! * [`parda_msg`] — the faithful message-passing formulation: one thread
//!   per rank over [`parda_comm::World`], with the exact send/receive
//!   rounds of Algorithm 3 (rank `p` performs `np − p` rounds).
//! * [`parda_threads`] — a shared-memory formulation: chunks are analyzed
//!   in parallel (rayon), then the cascade is folded sequentially. Same
//!   operation order per engine, lower overhead; used by the benchmarks.

use crate::engine::{Engine, MissSink};
use crate::error::{FaultPolicy, PardaError};
use parda_hist::ReuseHistogram;
use parda_obs::{CascadeRoundStats, RankMetrics, RecoveryMetrics, Stopwatch};
use parda_trace::{chunk_slice, Addr};
use parda_tree::ReuseTree;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Configuration for the parallel analyzers.
///
/// Construct via [`PardaConfig::default`] / [`PardaConfig::with_ranks`] and
/// the builder-style setters; the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking downstream crates.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct PardaConfig {
    /// Number of ranks (`np`). Chunks are split as evenly as possible.
    pub ranks: usize,
    /// Optional cache bound `B` (Algorithm 7): distances ≥ B collapse to ∞
    /// and per-rank state is capped at B entries.
    pub bound: Option<u64>,
    /// Use the space-optimized infinity processing (Algorithm 4). Disabling
    /// it reproduces plain Algorithm 3 (replicas retained; O(np·M)
    /// aggregate space) — kept for the D2 ablation.
    pub space_optimized: bool,
    /// Work-stealing grain for [`parda_threads`]: each rank's chunk is
    /// subdivided into sub-chunks of roughly this many references (at most
    /// [`MAX_PARTS_PER_RANK`] per rank), claimed independently off the
    /// shared counter and folded as extra virtual ranks. Smaller grains
    /// mean smaller per-item trees and better load balance; `None` uses
    /// [`DEFAULT_SUBCHUNK_REFS`]. Only active when space-optimized and
    /// unbounded (subdivision changes which distances a bounded run
    /// collapses to ∞, and the unoptimized ablation is partition-pinned).
    pub subchunk_refs: Option<usize>,
}

impl Default for PardaConfig {
    fn default() -> Self {
        Self {
            ranks: std::thread::available_parallelism().map_or(4, |p| p.get()),
            bound: None,
            space_optimized: true,
            subchunk_refs: None,
        }
    }
}

impl PardaConfig {
    /// Config with `ranks` ranks, unbounded, space-optimized.
    pub fn with_ranks(ranks: usize) -> Self {
        Self {
            ranks,
            ..Self::default()
        }
    }

    /// Builder-style bound setter.
    pub fn bounded(mut self, bound: u64) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Builder-style rank setter.
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Builder-style toggle for the Algorithm 4 space optimization.
    pub fn space_optimized(mut self, on: bool) -> Self {
        self.space_optimized = on;
        self
    }

    /// Builder-style override of the work-stealing sub-chunk grain.
    pub fn subchunk_refs(mut self, refs: usize) -> Self {
        self.subchunk_refs = Some(refs);
        self
    }
}

/// Default sub-chunk grain: large enough that chunk analysis dominates the
/// per-item cascade absorb, small enough that per-item trees stay within
/// the outer cache levels on dense traces.
pub const DEFAULT_SUBCHUNK_REFS: usize = 1 << 17;

/// Cap on sub-chunks per rank, bounding slot memory and fold overhead.
pub const MAX_PARTS_PER_RANK: usize = 64;

/// Global reference index at which each chunk starts.
fn chunk_starts(chunks: &[&[Addr]]) -> Vec<u64> {
    let mut starts = Vec::with_capacity(chunks.len());
    let mut acc = 0u64;
    for c in chunks {
        starts.push(acc);
        acc += c.len() as u64;
    }
    starts
}

/// One unit of pipelined chunk analysis: a contiguous trace sub-slice with
/// its global start index and the *reported* rank whose metrics it feeds.
/// Splitting a rank's chunk into several items is transparent to the
/// histogram — Parda over any contiguous partition equals the sequential
/// analysis (the Section IV-B theorem, property-tested below) — so items
/// act as extra virtual ranks in the cascade fold while metrics stay
/// grouped per reported rank.
struct WorkItem<'a> {
    chunk: &'a [Addr],
    start: u64,
    owner: usize,
}

/// Subdivide each rank's chunk into work-stealing sub-chunks. Subdivision
/// only applies in the space-optimized unbounded mode: bounded analysis
/// pins ∞-collapse decisions to the partition (both drivers must agree
/// exactly), and the unoptimized ablation ties its `next_ts` bookkeeping
/// to one item per rank.
fn build_items<'a>(
    chunks: &[&'a [Addr]],
    starts: &[u64],
    config: &PardaConfig,
) -> Vec<WorkItem<'a>> {
    let subdivide = config.space_optimized && config.bound.is_none();
    let grain = config.subchunk_refs.unwrap_or(DEFAULT_SUBCHUNK_REFS).max(1);
    let mut items = Vec::with_capacity(chunks.len());
    for (p, chunk) in chunks.iter().enumerate() {
        let parts = if subdivide {
            (chunk.len() / grain).clamp(1, MAX_PARTS_PER_RANK)
        } else {
            1
        };
        let mut off = 0u64;
        for sub in chunk_slice(chunk, parts) {
            items.push(WorkItem {
                chunk: sub,
                start: starts[p] + off,
                owner: p,
            });
            off += sub.len() as u64;
        }
    }
    items
}

/// One item per rank — no subdivision. Used by the fault-tolerant driver,
/// whose rescue/watchdog bookkeeping is per rank.
fn rank_items<'a>(chunks: &[&'a [Addr]], starts: &[u64]) -> Vec<WorkItem<'a>> {
    chunks
        .iter()
        .zip(starts)
        .enumerate()
        .map(|(p, (&chunk, &start))| WorkItem {
            chunk,
            start,
            owner: p,
        })
        .collect()
}

/// Message-passing Parda: the literal Algorithm 3 over a thread-backed
/// rank world.
///
/// Rank `p` processes its chunk, then loops `np − p − 1` more rounds, each
/// receiving its right neighbour's local infinities, resolving them, and
/// forwarding the survivors left. Rank 0 counts survivors as global
/// infinities. The final `reduce_sum` merges per-rank histograms.
pub fn parda_msg<T: ReuseTree + Default>(trace: &[Addr], config: &PardaConfig) -> ReuseHistogram {
    parda_msg_with_stats::<T>(trace, config).0
}

/// [`parda_msg`] with the per-rank observability breakdown: chunk-analysis
/// time, per-round cascade time and infinity-list lengths — the live
/// counterpart of the paper's Figure 4 bars.
pub fn parda_msg_with_stats<T: ReuseTree + Default>(
    trace: &[Addr],
    config: &PardaConfig,
) -> (ReuseHistogram, Vec<RankMetrics>) {
    let np = config.ranks.max(1);
    if np == 1 {
        let (hist, rank) = crate::seq::analyze_sequential_with_stats::<T>(trace, config.bound);
        return (hist, vec![rank]);
    }
    let chunks = chunk_slice(trace, np);
    let starts = chunk_starts(&chunks);

    let results =
        parda_comm::World::run::<Vec<Addr>, (ReuseHistogram, RankMetrics), _>(np, |mut ctx| {
            let p = ctx.rank();
            let mut engine: Engine<T> = Engine::new(config.bound, chunks[p].len());
            // `next_ts` only matters for the unoptimized variant, which keeps
            // inserting stream elements with fresh local timestamps.
            let mut next_ts = starts[p] + chunks[p].len() as u64;
            let mut rm = RankMetrics {
                rank: p,
                refs: chunks[p].len() as u64,
                ..Default::default()
            };

            // Round 0: own chunk.
            let sw = Stopwatch::start();
            if p == 0 {
                engine.process_chunk(chunks[0], starts[0], MissSink::Infinite);
                rm.chunk_ns = sw.ns();
            } else {
                let mut local_inf = Vec::new();
                engine.process_chunk(chunks[p], starts[p], MissSink::Forward(&mut local_inf));
                rm.chunk_ns = sw.ns();
                rm.infinities_forwarded += local_inf.len() as u64;
                ctx.send(p - 1, local_inf);
            }

            // Rounds 1..np-p: absorb the right neighbour's infinity stream.
            for _ in 1..(np - p) {
                let incoming = ctx.recv_from(p + 1);
                rm.cascade_rounds += 1;
                rm.round_infinity_lens.push(incoming.len() as u64);
                let sw = Stopwatch::start();
                let mut survivors = Vec::new();
                if config.space_optimized {
                    let stats = engine.process_infinities(&incoming, &mut survivors);
                    rm.record_round(&stats);
                } else {
                    engine.process_infinities_unoptimized(&incoming, next_ts, &mut survivors);
                    next_ts += incoming.len() as u64;
                    // Keep `round_batch_deletes` aligned with
                    // `round_infinity_lens` in the ablation mode too.
                    rm.record_round(&CascadeRoundStats::default());
                }
                if p == 0 {
                    engine.record_global_infinities(survivors.len() as u64);
                } else {
                    rm.infinities_forwarded += survivors.len() as u64;
                    ctx.send(p - 1, survivors);
                }
                rm.cascade_ns += sw.ns();
            }
            rm.engine = engine.metrics().clone();
            (engine.into_histogram(), rm)
        });

    let mut total = ReuseHistogram::new();
    let mut ranks = Vec::with_capacity(np);
    for (h, rm) in results {
        total.merge(&h);
        ranks.push(rm);
    }
    (total, ranks)
}

/// Shared-memory Parda: chunk analysis fans out over rayon, the infinity
/// cascade folds right-to-left on the caller thread.
///
/// Produces a histogram identical to [`parda_msg`] (property-tested): the
/// sequence of operations applied to each rank's engine is the same, only
/// the transport differs.
pub fn parda_threads<T: ReuseTree + Default + Send>(
    trace: &[Addr],
    config: &PardaConfig,
) -> ReuseHistogram {
    parda_threads_with_stats::<T>(trace, config).0
}

/// [`parda_threads`] with the per-rank observability breakdown.
///
/// In the space-optimized unbounded mode each rank's chunk is further
/// subdivided into up to [`MAX_PARTS_PER_RANK`] work-stealing sub-chunks
/// (grain [`PardaConfig::subchunk_refs`]); every sub-chunk is an extra
/// virtual rank in the cascade, so a rank's metrics can report several
/// `cascade_rounds` whose `round_infinity_lens` sum to what
/// [`parda_msg_with_stats`] forwards in total. Timing fields accumulate
/// across a rank's items.
pub fn parda_threads_with_stats<T: ReuseTree + Default + Send>(
    trace: &[Addr],
    config: &PardaConfig,
) -> (ReuseHistogram, Vec<RankMetrics>) {
    let np = config.ranks.max(1);
    if np == 1 {
        let (hist, rank) = crate::seq::analyze_sequential_with_stats::<T>(trace, config.bound);
        return (hist, vec![rank]);
    }
    let chunks = chunk_slice(trace, np);
    let starts = chunk_starts(&chunks);
    let items = build_items(&chunks, &starts, config);
    let n = items.len();

    // Pipelined schedule: workers claim items *right-to-left* off a shared
    // counter and publish each finished engine into its item's slot; the
    // caller thread folds the cascade right-to-left, blocking only on the
    // slot it needs next. Because the cascade consumes the rightmost item
    // first and workers also finish right-to-left, the fold of an item's
    // infinity stream overlaps the still-running chunk analysis of items
    // to its left — the global barrier between "phase 1" and "phase 2"
    // (the serial Figure-4 tail) is gone. Subdivision keeps per-item trees
    // small (cache-resident) and lets an idle worker steal the tail of a
    // slow rank instead of waiting at the rank boundary.
    let slots: Vec<RankSlot<ChunkResult<T>>> = (0..n).map(|_| RankSlot::default()).collect();
    let claim = AtomicUsize::new(0);
    let workers = worker_count(np);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = claim.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = n - 1 - k;
                let item = &items[i];
                slots[i].publish(analyze_rank::<T>(item.chunk, item.start, config, false));
            });
        }

        // The claim closure cannot fail — `Infallible` makes that
        // type-level: the error arm is an empty match, not a runtime
        // assertion. The fault-tolerant path is [`parda_threads_faulted`].
        let folded: Result<_, std::convert::Infallible> =
            fold_cascade(&items, np, config, |i| Ok(slots[i].take()));
        match folded {
            Ok(out) => out,
            Err(e) => match e {},
        }
    })
}

/// Fault-tolerant shared-memory Parda: [`parda_threads`] with
/// panic-isolated workers, bounded rescue retries, and an optional
/// watchdog on the cascade waits.
///
/// Each rank's chunk analysis runs under [`catch_unwind`]; a panicking
/// worker publishes a failure marker instead of killing the run, and the
/// cascade fold re-analyzes that rank on the caller thread with the
/// *scalar* reference engine ([`Engine::process_chunk_scalar`] — the
/// simplest, most-audited code path), retrying up to
/// [`FaultPolicy::max_retries`] times with [`FaultPolicy::retry_backoff`]
/// between attempts. Because the scalar engine is bit-identical to the
/// batched one, a rescued run produces exactly the histogram the
/// unfaulted run would have. Exhausted retries yield
/// [`PardaError::WorkerPanic`]; a rank that never publishes within
/// [`FaultPolicy::watchdog`] yields [`PardaError::Stall`] instead of a
/// hang. Recovery activity is tallied in the returned
/// [`RecoveryMetrics`] (`rank_retries` / `rank_rescues`).
pub fn parda_threads_faulted<T: ReuseTree + Default + Send>(
    trace: &[Addr],
    config: &PardaConfig,
    policy: &FaultPolicy,
) -> Result<(ReuseHistogram, Vec<RankMetrics>, RecoveryMetrics), PardaError> {
    let np = config.ranks.max(1);
    let chunks = chunk_slice(trace, np);
    let starts = chunk_starts(&chunks);
    // Rank granularity (no subdivision): rescue, retry accounting, and the
    // stall watchdog are all per rank.
    let items = rank_items(&chunks, &starts);
    let slots: Vec<RankSlot<Result<ChunkResult<T>, RankPanic>>> =
        (0..np).map(|_| RankSlot::default()).collect();
    let claim = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let workers = worker_count(np);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let k = claim.fetch_add(1, Ordering::Relaxed);
                if k >= np {
                    break;
                }
                let p = np - 1 - k;
                // The outer catch_unwind covers the publish itself: a
                // panic at the `parallel::slot_publish` site poisons the
                // slot lock *after* the value is stored, and the cascade
                // side recovers it through the poison-tolerant lock. No
                // panic may escape a scoped thread — that would abort the
                // whole scope at join.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let analyzed = catch_unwind(AssertUnwindSafe(|| {
                        parda_failpoint::failpoint!("parallel::worker");
                        parda_failpoint::failpoint!("parallel::worker_stall");
                        analyze_rank::<T>(chunks[p], starts[p], config, false)
                    }));
                    let mut slot = slots[p].lock();
                    *slot = Some(analyzed.map_err(|_| RankPanic));
                    parda_failpoint::failpoint!("parallel::slot_publish");
                }));
                slots[p].ready.notify_one();
            });
        }

        let mut recovery = RecoveryMetrics::default();
        let folded = fold_cascade(&items, np, config, |p| {
            claim_rank(
                &slots[p],
                chunks[p],
                starts[p],
                p,
                config,
                policy,
                &mut recovery,
            )
        });
        if folded.is_err() {
            // Stop workers from claiming further chunks; in-flight chunks
            // finish and are discarded.
            abort.store(true, Ordering::Relaxed);
        }
        folded.map(|(hist, metrics)| (hist, metrics, recovery))
    })
}

/// One rank's chunk analysis: build an engine, process the chunk
/// (batched or scalar), return it with the local infinities and wall
/// time. Shared by the workers and the rescue path.
fn analyze_rank<T: ReuseTree + Default>(
    chunk: &[Addr],
    start: u64,
    config: &PardaConfig,
    scalar: bool,
) -> ChunkResult<T> {
    let sw = Stopwatch::start();
    let mut engine: Engine<T> = Engine::new(config.bound, chunk.len());
    let mut local_inf = Vec::new();
    if scalar {
        engine.process_chunk_scalar(chunk, start, MissSink::Forward(&mut local_inf));
    } else {
        engine.process_chunk(chunk, start, MissSink::Forward(&mut local_inf));
    }
    (engine, local_inf, sw.ns())
}

/// Claim rank `p`'s result for the fault-tolerant cascade: wait (with the
/// policy watchdog), and if the worker panicked, rescue the rank by
/// re-analyzing its chunk with the scalar engine under bounded retries.
#[allow(clippy::too_many_arguments)]
fn claim_rank<T: ReuseTree + Default>(
    slot: &RankSlot<Result<ChunkResult<T>, RankPanic>>,
    chunk: &[Addr],
    start: u64,
    rank: usize,
    config: &PardaConfig,
    policy: &FaultPolicy,
    recovery: &mut RecoveryMetrics,
) -> Result<(ChunkResult<T>, u64), PardaError> {
    let (outcome, wait_ns) = match slot.take_deadline(policy.watchdog) {
        Some(v) => v,
        None => {
            return Err(PardaError::Stall {
                rank,
                deadline: policy
                    .watchdog
                    .expect("deadline exists when take times out"),
            })
        }
    };
    match outcome {
        Ok(result) => Ok((result, wait_ns)),
        Err(RankPanic) => {
            let mut attempts = 1u32; // the worker's attempt
            loop {
                if attempts > policy.max_retries {
                    return Err(PardaError::WorkerPanic { rank, attempts });
                }
                attempts += 1;
                recovery.rank_retries += 1;
                if !policy.retry_backoff.is_zero() {
                    std::thread::sleep(policy.retry_backoff);
                }
                match catch_unwind(AssertUnwindSafe(|| {
                    analyze_rank::<T>(chunk, start, config, true)
                })) {
                    Ok(result) => {
                        recovery.rank_rescues += 1;
                        return Ok((result, wait_ns));
                    }
                    Err(_) => continue,
                }
            }
        }
    }
}

/// The right-to-left cascade fold shared by [`parda_threads`] and
/// [`parda_threads_faulted`]: each item absorbs everything its right
/// neighbour would have sent over all Algorithm 3 rounds — that item's
/// own local infinities followed by the survivors of what it absorbed
/// from *its* right. `claim(i)` produces item `i`'s finished chunk
/// analysis plus the wait time, blocking / rescuing as the driver
/// dictates. Items are virtual ranks; metrics are grouped under each
/// item's owning rank (`0..np`), with timings accumulated and per-round
/// vectors pushed per absorbed stream.
///
/// Generic over the claim error `E` so the plain driver can instantiate
/// it with [`std::convert::Infallible`] and discharge the error arm with
/// an empty match.
fn fold_cascade<T: ReuseTree + Default, E>(
    items: &[WorkItem<'_>],
    np: usize,
    config: &PardaConfig,
    mut claim: impl FnMut(usize) -> Result<(ChunkResult<T>, u64), E>,
) -> Result<(ReuseHistogram, Vec<RankMetrics>), E> {
    let mut metrics: Vec<RankMetrics> = (0..np)
        .map(|p| RankMetrics {
            rank: p,
            ..Default::default()
        })
        .collect();
    for item in items {
        metrics[item.owner].refs += item.chunk.len() as u64;
    }
    let mut total = ReuseHistogram::new();

    // The stream is carried leftward *in place*: each item's survivors
    // overwrite resolved slots (engine-side partition), then the item's
    // own local infinities are prepended by appending the survivors to
    // them — no per-item forwarding allocation.
    let mut stream: Vec<Addr> = Vec::new();
    for i in (1..items.len()).rev() {
        let item = &items[i];
        let ((mut engine, mut own_inf, chunk_ns), wait_ns) = claim(i)?;
        let rm = &mut metrics[item.owner];
        rm.chunk_ns += chunk_ns;
        rm.cascade_wait_ns += wait_ns;
        if !stream.is_empty() {
            rm.cascade_rounds += 1;
            rm.round_infinity_lens.push(stream.len() as u64);
        }
        let sw = Stopwatch::start();
        if config.space_optimized {
            let received = !stream.is_empty();
            let stats = engine.process_infinities_in_place(&mut stream);
            if received {
                rm.record_round(&stats);
            }
        } else {
            let next_ts = item.start + item.chunk.len() as u64;
            let incoming = std::mem::take(&mut stream);
            engine.process_infinities_unoptimized(&incoming, next_ts, &mut stream);
            if !incoming.is_empty() {
                rm.record_round(&CascadeRoundStats::default());
            }
        }
        rm.cascade_ns += sw.ns();
        own_inf.append(&mut stream);
        rm.infinities_forwarded += own_inf.len() as u64;
        stream = own_inf;
        rm.engine.merge(engine.metrics());
        total.merge(engine.histogram());
    }

    // Leftmost item (rank 0's first sub-chunk): its own local infinities
    // and all unresolved survivors are authoritative global infinities.
    let ((mut engine0, own0, chunk_ns), wait_ns) = claim(0)?;
    let rm = &mut metrics[0];
    rm.chunk_ns += chunk_ns;
    rm.cascade_wait_ns += wait_ns;
    engine0.record_global_infinities(own0.len() as u64);
    if !stream.is_empty() {
        rm.cascade_rounds += 1;
        rm.round_infinity_lens.push(stream.len() as u64);
    }
    let sw = Stopwatch::start();
    if config.space_optimized {
        let received = !stream.is_empty();
        let stats = engine0.process_infinities_in_place(&mut stream);
        if received {
            rm.record_round(&stats);
        }
    } else {
        let item = &items[0];
        let next_ts = item.start + item.chunk.len() as u64;
        let incoming = std::mem::take(&mut stream);
        engine0.process_infinities_unoptimized(&incoming, next_ts, &mut stream);
        if !incoming.is_empty() {
            rm.record_round(&CascadeRoundStats::default());
        }
    }
    engine0.record_global_infinities(stream.len() as u64);
    rm.cascade_ns += sw.ns();
    rm.engine.merge(engine0.metrics());
    total.merge(engine0.histogram());

    Ok((total, metrics))
}

/// A rank's finished chunk analysis: the engine, its local infinities, and
/// the chunk wall time in nanoseconds.
type ChunkResult<T> = (Engine<T>, Vec<Addr>, u64);

/// Marker for a rank whose chunk-analysis worker panicked; the cascade
/// side rescues the rank by re-analyzing the chunk itself.
struct RankPanic;

/// Per-rank completion slot of the pipelined schedule: workers publish a
/// finished value here; the cascade thread blocks on `take` (or
/// `take_deadline`) for the one rank it needs next.
///
/// All lock acquisitions shed poison ([`Mutex::lock`] →
/// `unwrap_or_else(PoisonError::into_inner)`): a worker that panicked
/// while holding the slot — e.g. via the `parallel::slot_publish`
/// failpoint — must not take the cascade down with it, and an
/// `Option<V>` is always observable in a coherent state (the value is
/// written before any panic window).
struct RankSlot<V> {
    result: Mutex<Option<V>>,
    ready: Condvar,
}

impl<V> Default for RankSlot<V> {
    fn default() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

impl<V> RankSlot<V> {
    /// Poison-tolerant lock on the slot value.
    fn lock(&self) -> MutexGuard<'_, Option<V>> {
        self.result.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Store a finished value and wake the cascade thread.
    fn publish(&self, value: V) {
        *self.lock() = Some(value);
        self.ready.notify_one();
    }

    /// Block until the rank's value is published, returning it plus the
    /// time spent waiting — the pipeline bubble recorded as
    /// [`RankMetrics::cascade_wait_ns`].
    fn take(&self) -> (V, u64) {
        let sw = Stopwatch::start();
        let mut guard = self.lock();
        while guard.is_none() {
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        (guard.take().expect("slot is filled"), sw.ns())
    }

    /// [`RankSlot::take`] with a total deadline: `None` on expiry (the
    /// watchdog converts that into [`PardaError::Stall`]).
    fn take_deadline(&self, deadline: Option<Duration>) -> Option<(V, u64)> {
        let Some(limit) = deadline else {
            return Some(self.take());
        };
        let sw = Stopwatch::start();
        let mut guard = self.lock();
        loop {
            if let Some(v) = guard.take() {
                return Some((v, sw.ns()));
            }
            let remaining = limit.checked_sub(Duration::from_nanos(sw.ns()))?;
            (guard, _) = self
                .ready
                .wait_timeout(guard, remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Worker threads for the pipelined chunk analysis: `RAYON_NUM_THREADS`
/// (the knob the rest of the workspace honours) or the machine's available
/// parallelism, never more than the rank count.
fn worker_count(np: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    hw.min(np).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_tree::{AvlTree, SplayTree};
    use proptest::prelude::*;

    fn labels(s: &str) -> Vec<Addr> {
        s.bytes().map(u64::from).collect()
    }

    /// Paper Table II trace: two chunks, local vs global distances.
    #[test]
    fn table2_local_vs_global() {
        let trace = labels("dacbccgefafbc");
        assert_eq!(trace.len(), 13);
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        // Global distances per Table II: ∞×7 at first touches, then
        // 1 (c@4), 0 (c@5), 5 (a@9), 1 (f@10), 5 (b@11), 5 (c@12).
        assert_eq!(seq.infinite(), 7);
        assert_eq!(seq.count(0), 1);
        assert_eq!(seq.count(1), 2);
        assert_eq!(seq.count(5), 3);

        for np in [2, 3, 4] {
            let cfg = PardaConfig::with_ranks(np);
            assert_eq!(parda_msg::<SplayTree>(&trace, &cfg), seq, "np={np}");
            assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq, "np={np}");
        }
    }

    /// Paper Table III + Figure 2: the three-processor space-optimized
    /// walkthrough, asserting the intermediate states shown in the figure.
    #[test]
    fn table3_figure2_walkthrough() {
        let trace = labels("dacbccgefafbcmtmacfbdcac");
        assert_eq!(trace.len(), 24);
        let chunks = chunk_slice(&trace, 3);

        // -- chunk processing (Figure 2 top row) --
        let mut e0: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf0 = Vec::new();
        e0.process_chunk(chunks[0], 0, MissSink::Forward(&mut inf0));
        assert_eq!(inf0, labels("dacbge"), "Figure 2(a) local infinities");

        let mut e1: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf1 = Vec::new();
        e1.process_chunk(chunks[1], 8, MissSink::Forward(&mut inf1));
        assert_eq!(inf1, labels("fabcmt"), "Figure 2(b) local infinities");

        let mut e2: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf2 = Vec::new();
        e2.process_chunk(chunks[2], 16, MissSink::Forward(&mut inf2));
        assert_eq!(inf2, labels("acfbd"), "Figure 2(c) local infinities");
        // Figure 2(c) tree: {17:? ...} — the full p=2 tree holds its six
        // live elements keyed by last access: 18:f 19:b 20:d 22:a 23:c.
        assert_eq!(
            e2.histogram().finite_counts().iter().sum::<u64>(),
            3,
            "p=2 has three intra-chunk reuses (c@21? a@22? c@23)"
        );

        // -- p=1 absorbs p=2's infinities (Figure 2(e)) --
        let mut out1 = Vec::new();
        e1.process_infinities(&inf2, &mut out1);
        assert_eq!(out1, labels("d"), "only d survives p=1");
        assert_eq!(e1.stream_count(), 5, "Figure 2(e) count=5");
        assert_eq!(
            e1_state(&e1),
            vec![(14, b't' as u64), (15, b'm' as u64)],
            "Figure 2(e) tree holds 14:t and 15:m"
        );

        // -- p=0 absorbs p=1's round-0 list (Figure 2(d)) --
        let mut out0 = Vec::new();
        e0.process_infinities(&inf1, &mut out0);
        assert_eq!(out0, labels("fmt"), "Figure 2(d) local_infinities = f m t");
        assert_eq!(e0.stream_count(), 6, "Figure 2(d) count=6");
        assert_eq!(
            e0_state(&e0),
            vec![(0, b'd' as u64), (6, b'g' as u64), (7, b'e' as u64)],
            "Figure 2(d) tree holds 0:d, 6:g, 7:e"
        );

        // -- p=0 absorbs p=1's round-1 survivors (Figure 2(f)) --
        let mut out0b = Vec::new();
        e0.process_infinities(&out1, &mut out0b);
        assert!(out0b.is_empty(), "d resolves at p=0");
        assert_eq!(e0.stream_count(), 7, "Figure 2(f) count=7");
        assert_eq!(
            e0_state(&e0),
            vec![(6, b'g' as u64), (7, b'e' as u64)],
            "Figure 2(f) tree holds 6:g and 7:e"
        );

        // -- full parallel result equals sequential --
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for np in [2, 3, 5, 8] {
            let cfg = PardaConfig::with_ranks(np);
            assert_eq!(parda_msg::<SplayTree>(&trace, &cfg), seq, "np={np}");
            assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq, "np={np}");
        }

        fn e0_state(e: &Engine<SplayTree>) -> Vec<(u64, u64)> {
            e.export_state()
        }
        fn e1_state(e: &Engine<SplayTree>) -> Vec<(u64, u64)> {
            e.export_state()
        }
    }

    #[test]
    fn more_ranks_than_references() {
        let trace = labels("aba");
        let cfg = PardaConfig::with_ranks(16);
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        assert_eq!(parda_msg::<SplayTree>(&trace, &cfg), seq);
        assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq);
    }

    #[test]
    fn empty_trace() {
        let cfg = PardaConfig::with_ranks(4);
        assert_eq!(parda_msg::<SplayTree>(&[], &cfg).total(), 0);
        assert_eq!(parda_threads::<SplayTree>(&[], &cfg).total(), 0);
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let trace: Vec<Addr> = (0..200).map(|i| (i * 3) % 37).collect();
        let cfg = PardaConfig::with_ranks(1);
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        assert_eq!(parda_msg::<SplayTree>(&trace, &cfg), seq);
        assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq);
    }

    #[test]
    fn unoptimized_variant_matches() {
        let trace: Vec<Addr> = (0..500).map(|i| (i * 17) % 83).collect();
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        let cfg = PardaConfig::with_ranks(4).space_optimized(false);
        assert_eq!(parda_msg::<SplayTree>(&trace, &cfg), seq);
        assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq);
    }

    /// Bounded-analysis contract (paper Section V): distances below the
    /// bound are exact; everything at or above the bound may be reported
    /// either exactly or as ∞ (it is a miss for every cache ≤ B either
    /// way). Bounded *parallel* can resolve some d ≥ B exactly that bounded
    /// *sequential* lumps into ∞ — so the comparison is per-bucket below B
    /// against the unbounded ground truth, not histogram equality.
    fn assert_bounded_contract(bounded: &ReuseHistogram, full: &ReuseHistogram, bound: u64) {
        assert_eq!(bounded.total(), full.total(), "mass must be conserved");
        for d in 0..bound {
            assert_eq!(
                bounded.count(d),
                full.count(d),
                "bucket {d} under bound {bound}"
            );
        }
        for cap in [1, bound / 2, bound] {
            if cap >= 1 {
                assert_eq!(
                    bounded.miss_count(cap),
                    full.miss_count(cap),
                    "miss count at capacity {cap} (bound {bound})"
                );
            }
        }
        assert!(bounded.infinite() >= full.infinite());
    }

    use parda_hist::ReuseHistogram;

    #[test]
    fn bounded_parallel_honours_the_bound_contract() {
        let trace: Vec<Addr> = (0..2_000).map(|i| (i * 31) % 257).collect();
        let full = analyze_sequential::<SplayTree>(&trace, None);
        for bound in [8u64, 64, 512] {
            for np in [2, 4, 7] {
                let cfg = PardaConfig::with_ranks(np).bounded(bound);
                let threads = parda_threads::<SplayTree>(&trace, &cfg);
                assert_bounded_contract(&threads, &full, bound);
                // Both parallel drivers apply the identical per-rank
                // operation sequence, so they agree exactly.
                assert_eq!(
                    parda_msg::<SplayTree>(&trace, &cfg),
                    threads,
                    "np={np} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn subdivided_work_stealing_matches_sequential() {
        let trace: Vec<Addr> = (0..3_000).map(|i| (i * 29) % 211).collect();
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for grain in [1usize, 7, 64, 500] {
            for np in [2, 3, 5] {
                let cfg = PardaConfig::with_ranks(np).subchunk_refs(grain);
                assert_eq!(
                    parda_threads::<SplayTree>(&trace, &cfg),
                    seq,
                    "np={np} grain={grain}"
                );
            }
        }
    }

    #[test]
    fn subdivided_metrics_group_by_owner_rank() {
        let trace: Vec<Addr> = (0..4_000).map(|i| (i * 13) % 311).collect();
        let np = 3;
        let cfg = PardaConfig::with_ranks(np).subchunk_refs(100);
        let (hist, metrics) = parda_threads_with_stats::<SplayTree>(&trace, &cfg);
        assert_eq!(hist, analyze_sequential::<SplayTree>(&trace, None));
        assert_eq!(metrics.len(), np, "metrics stay grouped per reported rank");
        assert_eq!(metrics.iter().map(|m| m.refs).sum::<u64>(), 4_000);
        assert_eq!(metrics.iter().map(|m| m.engine.refs).sum::<u64>(), 4_000);
        for m in &metrics {
            // Every rank was split into MAX_PARTS_PER_RANK items; all but
            // the leftmost item absorb a non-empty stream on this trace.
            assert!(m.cascade_rounds >= 1, "rank {} absorbed no stream", m.rank);
            assert_eq!(m.cascade_rounds as usize, m.round_infinity_lens.len());
            assert_eq!(m.round_infinity_lens.len(), m.round_batch_deletes.len());
        }
        // Conservation: everything forwarded across a virtual boundary is
        // received exactly once somewhere to its left.
        let forwarded: u64 = metrics.iter().map(|m| m.infinities_forwarded).sum();
        let received: u64 = metrics
            .iter()
            .flat_map(|m| m.round_infinity_lens.iter())
            .sum();
        assert_eq!(forwarded, received);
    }

    #[test]
    fn faulted_driver_matches_unfaulted_without_faults() {
        let trace: Vec<Addr> = (0..1_500).map(|i| (i * 13) % 131).collect();
        let policy = FaultPolicy::default();
        for np in [1, 2, 4, 7] {
            let cfg = PardaConfig::with_ranks(np);
            let (hist, metrics, recovery) =
                parda_threads_faulted::<SplayTree>(&trace, &cfg, &policy).unwrap();
            assert_eq!(hist, parda_threads::<SplayTree>(&trace, &cfg), "np={np}");
            assert_eq!(metrics.len(), np);
            assert_eq!(metrics.iter().map(|m| m.refs).sum::<u64>(), 1_500);
            assert_eq!(recovery.rank_retries, 0, "no faults, no retries");
            assert_eq!(recovery.rank_rescues, 0);
        }
    }

    #[test]
    fn faulted_driver_watchdog_is_quiet_on_healthy_runs() {
        let trace: Vec<Addr> = (0..800).map(|i| (i * 7) % 89).collect();
        let cfg = PardaConfig::with_ranks(4);
        let policy = FaultPolicy::default().watchdog(std::time::Duration::from_secs(30));
        let (hist, _, _) = parda_threads_faulted::<SplayTree>(&trace, &cfg, &policy).unwrap();
        assert_eq!(hist, parda_threads::<SplayTree>(&trace, &cfg));
    }

    #[test]
    fn faulted_driver_handles_empty_and_tiny_traces() {
        let policy = FaultPolicy::default();
        let cfg = PardaConfig::with_ranks(4);
        let (hist, _, _) = parda_threads_faulted::<SplayTree>(&[], &cfg, &policy).unwrap();
        assert_eq!(hist.total(), 0);
        let trace = labels("aba");
        let (hist, _, _) = parda_threads_faulted::<SplayTree>(&trace, &cfg, &policy).unwrap();
        assert_eq!(hist, analyze_sequential::<SplayTree>(&trace, None));
    }

    proptest! {
        /// The fault-tolerant driver is bit-identical to the plain one on
        /// healthy runs for every trace, rank count, and bound.
        #[test]
        fn faulted_equals_unfaulted_prop(
            trace in proptest::collection::vec(0u64..48, 0..300),
            np in 1usize..7,
        ) {
            let cfg = PardaConfig::with_ranks(np);
            let (hist, _, _) = parda_threads_faulted::<SplayTree>(
                &trace, &cfg, &FaultPolicy::default(),
            ).unwrap();
            prop_assert_eq!(hist, parda_threads::<SplayTree>(&trace, &cfg));
        }
    }

    proptest! {
        /// Core correctness theorem (paper Section IV-B): Parda equals the
        /// sequential analysis for every trace and rank count.
        #[test]
        fn parallel_equals_sequential(
            trace in proptest::collection::vec(0u64..48, 0..400),
            np in 1usize..9,
        ) {
            let seq = analyze_sequential::<SplayTree>(&trace, None);
            let cfg = PardaConfig::with_ranks(np);
            prop_assert_eq!(parda_threads::<SplayTree>(&trace, &cfg), seq.clone());
            prop_assert_eq!(parda_msg::<AvlTree>(&trace, &cfg), seq);
        }

        /// Bounded Parda honours the Algorithm 7 contract for every trace,
        /// rank count, and bound: exact below B, mass-conserving, and
        /// miss-count-exact for every cache capacity ≤ B.
        #[test]
        fn bounded_parallel_contract_prop(
            trace in proptest::collection::vec(0u64..48, 0..300),
            np in 1usize..6,
            bound in 1u64..32,
        ) {
            let full = analyze_sequential::<SplayTree>(&trace, None);
            let cfg = PardaConfig::with_ranks(np).bounded(bound);
            let bounded = parda_threads::<SplayTree>(&trace, &cfg);
            prop_assert_eq!(bounded.total(), full.total());
            for d in 0..bound {
                prop_assert_eq!(bounded.count(d), full.count(d), "bucket {}", d);
            }
            for cap in 1..=bound {
                prop_assert_eq!(bounded.miss_count(cap), full.miss_count(cap), "capacity {}", cap);
            }
        }

        /// The space-optimization flag never changes the histogram.
        #[test]
        fn space_optimization_is_transparent(
            trace in proptest::collection::vec(0u64..32, 0..300),
            np in 2usize..6,
        ) {
            let on = PardaConfig::with_ranks(np);
            let off = PardaConfig::with_ranks(np).space_optimized(false);
            prop_assert_eq!(
                parda_threads::<SplayTree>(&trace, &on),
                parda_threads::<SplayTree>(&trace, &off)
            );
        }
    }
}

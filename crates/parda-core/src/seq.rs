//! Sequential reuse-distance analysis: the paper's Section III.
//!
//! [`analyze_sequential`] is Algorithm 1 (tree-based, O(N log M));
//! [`analyze_naive`] is the Section III-A stack algorithm (O(N·M)), kept as
//! the obviously-correct baseline. [`SequentialAnalyzer`] exposes the same
//! engine incrementally for online/streaming use.

use crate::engine::{Engine, MissSink};
use parda_hist::ReuseHistogram;
use parda_obs::{EngineMetrics, RankMetrics, Stopwatch};
use parda_trace::Addr;
use parda_tree::{NaiveStack, ReuseTree};

/// Incremental sequential analyzer (Algorithm 1 driven reference by
/// reference).
///
/// # Examples
///
/// ```
/// use parda_core::seq::SequentialAnalyzer;
/// use parda_tree::SplayTree;
///
/// let mut analyzer: SequentialAnalyzer<SplayTree> = SequentialAnalyzer::new(None);
/// for addr in [1u64, 2, 1, 1] {
///     analyzer.process(addr);
/// }
/// let hist = analyzer.finish();
/// assert_eq!(hist.infinite(), 2);
/// assert_eq!(hist.count(0), 1);
/// assert_eq!(hist.count(1), 1);
/// ```
pub struct SequentialAnalyzer<T: ReuseTree> {
    engine: Engine<T>,
    next_ts: u64,
}

impl<T: ReuseTree + Default> SequentialAnalyzer<T> {
    /// Create an analyzer; `bound` enables Algorithm 7 capping.
    pub fn new(bound: Option<u64>) -> Self {
        Self::with_capacity(bound, 0)
    }

    /// [`Self::new`] with a capacity hint: the expected trace length, used
    /// to pre-size the engine's hash table and tree arena.
    pub fn with_capacity(bound: Option<u64>, capacity_hint: usize) -> Self {
        Self {
            engine: Engine::new(bound, capacity_hint),
            next_ts: 0,
        }
    }

    /// Process one reference.
    pub fn process(&mut self, addr: Addr) {
        self.engine
            .process_chunk(&[addr], self.next_ts, MissSink::Infinite);
        self.next_ts += 1;
    }

    /// Process a batch of references.
    pub fn process_all(&mut self, addrs: &[Addr]) {
        self.engine
            .process_chunk(addrs, self.next_ts, MissSink::Infinite);
        self.next_ts += addrs.len() as u64;
    }

    /// References processed so far.
    pub fn processed(&self) -> u64 {
        self.next_ts
    }

    /// The histogram accumulated so far.
    pub fn histogram(&self) -> &ReuseHistogram {
        self.engine.histogram()
    }

    /// Engine counters accumulated so far (tree ops, hits, live-set
    /// high-water mark, …).
    pub fn metrics(&self) -> &EngineMetrics {
        self.engine.metrics()
    }

    /// Finish, returning the histogram.
    pub fn finish(self) -> ReuseHistogram {
        self.engine.into_histogram()
    }
}

/// Paper Algorithm 1: sequential tree-based reuse distance analysis.
/// `bound` enables the Algorithm 7 cap (distances ≥ bound become ∞).
pub fn analyze_sequential<T: ReuseTree + Default>(
    trace: &[Addr],
    bound: Option<u64>,
) -> ReuseHistogram {
    analyze_sequential_with_stats::<T>(trace, bound).0
}

/// [`analyze_sequential`] plus the observability breakdown: a single
/// rank-0 [`RankMetrics`] whose `chunk_ns` covers the whole pass (there is
/// no cascade in the sequential algorithm).
pub fn analyze_sequential_with_stats<T: ReuseTree + Default>(
    trace: &[Addr],
    bound: Option<u64>,
) -> (ReuseHistogram, RankMetrics) {
    let sw = Stopwatch::start();
    let mut analyzer: SequentialAnalyzer<T> = SequentialAnalyzer::with_capacity(bound, trace.len());
    analyzer.process_all(trace);
    let rm = RankMetrics {
        rank: 0,
        refs: trace.len() as u64,
        chunk_ns: sw.ns(),
        engine: analyzer.metrics().clone(),
        ..Default::default()
    };
    (analyzer.finish(), rm)
}

/// Sequential analysis with a per-reference observer: `observe(index, addr,
/// distance)` is called for every reference in trace order.
///
/// This is the hook that downstream applications build on — per-object
/// histograms ([`crate::object`]), phase detection, per-instruction
/// attribution — without re-implementing Algorithm 1. The unbounded exact
/// distance is reported (no Algorithm 7 cap), since consumers typically
/// re-bin themselves.
pub fn analyze_with<T, F>(trace: &[Addr], mut observe: F) -> ReuseHistogram
where
    T: ReuseTree + Default,
    F: FnMut(usize, Addr, parda_hist::Distance),
{
    use parda_hash::LastAccessTable;
    let mut tree = T::default();
    let mut table = LastAccessTable::new();
    let mut hist = ReuseHistogram::new();
    for (i, &z) in trace.iter().enumerate() {
        let ts = i as u64;
        let distance = match table.last_access(z) {
            Some(t0) => {
                let (d, _) = tree
                    .distance_and_remove(t0)
                    .expect("table and tree are kept in sync");
                parda_hist::Distance::Finite(d)
            }
            None => parda_hist::Distance::Infinite,
        };
        hist.record(distance);
        observe(i, z, distance);
        tree.insert(ts, z);
        table.record(z, ts);
    }
    hist
}

/// Paper Section III-A: the O(N·M) naïve stack algorithm.
pub fn analyze_naive(trace: &[Addr]) -> ReuseHistogram {
    let mut stack = NaiveStack::new();
    let mut hist = ReuseHistogram::new();
    for &addr in trace {
        match stack.access(addr) {
            Some(d) => hist.record_finite(d),
            None => hist.record_infinite(),
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_tree::{AvlTree, SplayTree, Treap};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn labels(s: &str) -> Vec<Addr> {
        s.bytes().map(u64::from).collect()
    }

    #[test]
    fn table1_matches_paper() {
        let trace = labels("dacbccgefa");
        let hist = analyze_sequential::<SplayTree>(&trace, None);
        assert_eq!(hist.infinite(), 7);
        assert_eq!(hist.count(0), 1);
        assert_eq!(hist.count(1), 1);
        assert_eq!(hist.count(5), 1);
        assert_eq!(hist, analyze_naive(&trace));
    }

    #[test]
    fn incremental_equals_batch() {
        let trace: Vec<Addr> = (0..300).map(|i| (i * 13) % 41).collect();
        let mut inc: SequentialAnalyzer<AvlTree> = SequentialAnalyzer::new(None);
        for &a in &trace {
            inc.process(a);
        }
        assert_eq!(inc.processed(), 300);
        assert_eq!(inc.finish(), analyze_sequential::<AvlTree>(&trace, None));
    }

    #[test]
    fn empty_trace_yields_empty_histogram() {
        let hist = analyze_sequential::<SplayTree>(&[], None);
        assert_eq!(hist.total(), 0);
        assert_eq!(analyze_naive(&[]).total(), 0);
    }

    #[test]
    fn single_address_trace() {
        let trace = vec![42u64; 100];
        let hist = analyze_sequential::<Treap>(&trace, None);
        assert_eq!(hist.infinite(), 1);
        assert_eq!(hist.count(0), 99);
    }

    #[test]
    fn bounded_matches_unbounded_below_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let trace: Vec<Addr> = (0..5_000).map(|_| rng.gen_range(0..200)).collect();
        let full = analyze_sequential::<SplayTree>(&trace, None);
        let bounded = analyze_sequential::<SplayTree>(&trace, Some(64));
        for d in 0..64u64 {
            assert_eq!(full.count(d), bounded.count(d), "distance {d}");
        }
        // Everything at d ≥ 64 is lumped into ∞.
        let lumped: u64 = (64..=full.max_distance().unwrap_or(0))
            .map(|d| full.count(d))
            .sum();
        assert_eq!(bounded.infinite(), full.infinite() + lumped);
        assert_eq!(bounded.total(), full.total());
    }

    #[test]
    fn bound_larger_than_footprint_changes_nothing() {
        let trace: Vec<Addr> = (0..2_000).map(|i| (i * 7) % 100).collect();
        assert_eq!(
            analyze_sequential::<SplayTree>(&trace, Some(1_000)),
            analyze_sequential::<SplayTree>(&trace, None)
        );
    }

    proptest! {
        /// All three tree engines and the naïve stack agree on arbitrary
        /// traces — four independent implementations, one answer.
        #[test]
        fn engines_agree(trace in proptest::collection::vec(0u64..64, 0..400)) {
            let naive = analyze_naive(&trace);
            prop_assert_eq!(&analyze_sequential::<SplayTree>(&trace, None), &naive);
            prop_assert_eq!(&analyze_sequential::<AvlTree>(&trace, None), &naive);
            prop_assert_eq!(&analyze_sequential::<Treap>(&trace, None), &naive);
        }

        /// The histogram-predicted hit count for capacity C equals a direct
        /// LRU simulation of size C — the fundamental identity that makes
        /// reuse distance useful (paper Section II).
        #[test]
        fn histogram_predicts_lru_hits(
            trace in proptest::collection::vec(0u64..64, 0..400),
            capacity in 1u64..32,
        ) {
            let hist = analyze_sequential::<SplayTree>(&trace, None);
            let mut cache = parda_cachesim::LruCache::new(capacity as usize);
            let stats = cache.run_trace(&trace);
            prop_assert_eq!(hist.hit_count(capacity), stats.hits);
            prop_assert_eq!(hist.miss_count(capacity), stats.misses);
        }

        /// Bounded analysis with B ≥ M is exact.
        #[test]
        fn bounded_with_large_b_is_exact(trace in proptest::collection::vec(0u64..32, 0..300)) {
            let full = analyze_sequential::<AvlTree>(&trace, None);
            let bounded = analyze_sequential::<AvlTree>(&trace, Some(64));
            prop_assert_eq!(full, bounded);
        }
    }
}

//! Multi-phase streaming Parda (paper Algorithms 5 and 6, Section IV-D).
//!
//! Real traces arrive as unbounded streams (the paper pipes them straight
//! out of Pin), so the whole-trace chunking of Algorithm 3 cannot be
//! applied up front. The phase-based algorithm reads `np · C` references per
//! phase, runs one Parda pass over them, and then *reduces the analysis
//! state*: every rank ships its live `(address, timestamp)` entries to the
//! highest rank, which merges them (no duplicate checks needed in unbounded
//! mode — the space-optimized cascade already deleted stale replicas). The
//! rank holding the global state answers global infinities authoritatively
//! in the next phase.
//!
//! Two reduction strategies, selectable via [`Reduction`]:
//!
//! * [`Reduction::ShipToRankZero`] — the basic Algorithm 6: merge on rank
//!   `np−1`, then transfer the merged state back to rank 0.
//! * [`Reduction::RenumberRanks`] — the paper's enhancement: "we can
//!   reassign processor ids in the reverse order therefore processor np−1
//!   becomes the processor 0 at next phase" — the merged state never moves;
//!   all algorithm roles are played by *virtual* ranks whose mapping to
//!   physical ranks reverses each phase.
//!
//! Both produce identical histograms (property-tested); the renumbering
//! variant saves one O(M) state transfer per phase.

use crate::engine::{Engine, MissSink};
use crate::parallel::PardaConfig;
use parda_hist::ReuseHistogram;
use parda_obs::{PhasedMetrics, RankMetrics, Stopwatch};
use parda_trace::{chunk_slice, Addr, AddressStream};
use parda_tree::ReuseTree;
use parking_lot::Mutex;

/// Messages exchanged by the phased driver.
enum PhasedMsg {
    /// A chunk of the current phase starting at the given global index.
    /// `last` is set when the source ran dry filling this phase, letting
    /// every rank skip the final state reduction (the merged tree would
    /// only be consulted by a phase that never comes).
    Chunk {
        start_ts: u64,
        data: Vec<Addr>,
        last: bool,
    },
    /// A local-infinities sequence (cascade round).
    Infinities(Vec<Addr>),
    /// Live `(timestamp, addr)` state for the phase reduction.
    State(Vec<(u64, Addr)>),
    /// End of input: no further phases.
    Done,
}

/// How per-rank state is reduced at each phase boundary (Algorithm 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Reduction {
    /// Merge on rank `np−1`, then ship the merged state to rank 0.
    #[default]
    ShipToRankZero,
    /// Merge on virtual rank `np−1` and reverse the virtual rank order, so
    /// the merging rank *becomes* virtual rank 0 — no state transfer.
    RenumberRanks,
}

/// Streaming Parda: analyze `source` in phases of `np · phase_chunk`
/// references (paper Algorithm 5), using the default
/// [`Reduction::ShipToRankZero`] strategy.
///
/// Returns the complete reuse-distance histogram; exact equality with the
/// offline analyzers is property-tested.
///
/// # Examples
///
/// ```
/// use parda_core::{phased, PardaConfig};
/// use parda_trace::SliceStream;
///
/// let trace: Vec<u64> = (0..1000u64).map(|i| i % 50).collect();
/// let hist = phased::parda_phased::<parda_tree::SplayTree, _>(
///     SliceStream::new(&trace),
///     64, // C: references per rank per phase
///     &PardaConfig::with_ranks(4),
/// );
/// assert_eq!(hist.total(), 1000);
/// assert_eq!(hist.infinite(), 50);
/// ```
pub fn parda_phased<T, S>(source: S, phase_chunk: usize, config: &PardaConfig) -> ReuseHistogram
where
    T: ReuseTree + Default,
    S: AddressStream + Send,
{
    parda_phased_with::<T, S>(source, phase_chunk, config, Reduction::ShipToRankZero)
}

/// Streaming Parda with an explicit reduction strategy.
pub fn parda_phased_with<T, S>(
    source: S,
    phase_chunk: usize,
    config: &PardaConfig,
    reduction: Reduction,
) -> ReuseHistogram
where
    T: ReuseTree + Default,
    S: AddressStream + Send,
{
    parda_phased_with_stats::<T, S>(source, phase_chunk, config, reduction).0
}

/// [`parda_phased_with`] plus the observability breakdown: per-rank chunk
/// and cascade timings accumulated over all phases, and a [`PhasedMetrics`]
/// whose `phase_reduction_ns[k]` is the slowest rank's reduction time in
/// phase `k` (the critical-path cost the paper's renumbering enhancement
/// attacks).
pub fn parda_phased_with_stats<T, S>(
    source: S,
    phase_chunk: usize,
    config: &PardaConfig,
    reduction: Reduction,
) -> (ReuseHistogram, Vec<RankMetrics>, PhasedMetrics)
where
    T: ReuseTree + Default,
    S: AddressStream + Send,
{
    assert!(phase_chunk > 0, "phase chunk size must be positive");
    let np = config.ranks.max(1);
    if np == 1 {
        return phased_single_rank::<T, S>(source, config.bound);
    }

    // Physical rank 0 owns the input stream (it is attached to the pipe in
    // the paper's framework; virtual ranks rotate around it).
    let source = Mutex::new(Some(source));

    let results = parda_comm::World::run::<PhasedMsg, (ReuseHistogram, RankMetrics, Vec<u64>), _>(
        np,
        |mut ctx| {
            let p = ctx.rank();
            let mut engine: Engine<T> = Engine::new(config.bound, phase_chunk);
            let mut rm = RankMetrics {
                rank: p,
                ..Default::default()
            };
            // Per-phase reduction time on this rank; the driver folds these
            // element-wise (max across ranks) into [`PhasedMetrics`].
            let mut phase_red: Vec<u64> = Vec::new();
            let mut my_source = if p == 0 {
                Some(source.lock().take().expect("rank 0 takes the source once"))
            } else {
                None
            };
            let mut phase_base: u64 = 0;
            let mut read_buf: Vec<Addr> = Vec::new();
            // Virtual-rank mapping parity: when `reversed`, virtual rank v is
            // played by physical rank np-1-v.
            let mut reversed = false;
            let phys = |v: usize, reversed: bool| if reversed { np - 1 - v } else { v };

            loop {
                // --- distribution (paper Figure 3: the pipe-attached process
                //     reads and scatters; chunk i goes to *virtual* rank i) ---
                let (chunk, start_ts, last_phase) = if p == 0 {
                    let src = my_source.as_mut().expect("rank 0 has the source");
                    read_buf.clear();
                    let got = src.fill(&mut read_buf, np * phase_chunk);
                    if got == 0 {
                        for dest in 1..np {
                            ctx.send(dest, PhasedMsg::Done);
                        }
                        break;
                    }
                    // A short read means the source is exhausted: this phase is
                    // the last one (an exactly-full read can't tell, and then
                    // the reduction below runs once more than needed).
                    let last = got < np * phase_chunk;
                    let chunks = chunk_slice(&read_buf, np);
                    let mut acc = phase_base;
                    let mut mine = None;
                    for (v, c) in chunks.iter().enumerate() {
                        let dest = phys(v, reversed);
                        if dest == 0 {
                            mine = Some((c.to_vec(), acc, last));
                        } else {
                            ctx.send(
                                dest,
                                PhasedMsg::Chunk {
                                    start_ts: acc,
                                    data: c.to_vec(),
                                    last,
                                },
                            );
                        }
                        acc += c.len() as u64;
                    }
                    phase_base = acc;
                    mine.expect("some virtual rank maps to physical 0")
                } else {
                    match ctx.recv_from(0) {
                        PhasedMsg::Done => break,
                        PhasedMsg::Chunk {
                            start_ts,
                            data,
                            last,
                        } => (data, start_ts, last),
                        _ => unreachable!("rank 0 only sends chunks or Done here"),
                    }
                };

                // This phase's virtual rank for this physical rank.
                let v = if reversed { np - 1 - p } else { p };
                rm.refs += chunk.len() as u64;

                // --- one Parda pass over the phase (Algorithm 3 rounds, in
                //     virtual-rank space) ---
                let sw = Stopwatch::start();
                if v == 0 {
                    // Virtual rank 0 analyzes on top of the accumulated global
                    // state: its local infinities are authoritative.
                    engine.process_chunk(&chunk, start_ts, MissSink::Infinite);
                    rm.chunk_ns += sw.ns();
                } else {
                    let mut local_inf = Vec::new();
                    engine.process_chunk(&chunk, start_ts, MissSink::Forward(&mut local_inf));
                    rm.chunk_ns += sw.ns();
                    rm.infinities_forwarded += local_inf.len() as u64;
                    ctx.send(phys(v - 1, reversed), PhasedMsg::Infinities(local_inf));
                }
                for _ in 1..(np - v) {
                    let incoming = match ctx.recv_from(phys(v + 1, reversed)) {
                        PhasedMsg::Infinities(list) => list,
                        _ => unreachable!("cascade rounds only carry infinity lists"),
                    };
                    rm.cascade_rounds += 1;
                    rm.round_infinity_lens.push(incoming.len() as u64);
                    let sw = Stopwatch::start();
                    let mut survivors = Vec::new();
                    engine.process_infinities(&incoming, &mut survivors);
                    if v == 0 {
                        engine.record_global_infinities(survivors.len() as u64);
                    } else {
                        rm.infinities_forwarded += survivors.len() as u64;
                        ctx.send(phys(v - 1, reversed), PhasedMsg::Infinities(survivors));
                    }
                    rm.cascade_ns += sw.ns();
                }

                // --- state reduction onto virtual rank np-1 (Algorithm 6) ---
                // The merged state exists solely to answer the *next* phase's
                // global infinities, so the last phase skips the reduction
                // entirely — on big traces that saves merging O(M) live
                // entries into a tree nobody will query.
                let red_ns = if !last_phase {
                    let sw = Stopwatch::start();
                    let merger = phys(np - 1, reversed);
                    if v != np - 1 {
                        ctx.send(merger, PhasedMsg::State(engine.drain_state()));
                    } else {
                        for src_v in 0..np - 1 {
                            match ctx.recv_from(phys(src_v, reversed)) {
                                PhasedMsg::State(pairs) => engine.import_state(&pairs),
                                _ => unreachable!("reduction expects state messages"),
                            }
                        }
                    }
                    match reduction {
                        Reduction::ShipToRankZero => {
                            // Transfer the merged state back to (virtual =
                            // physical) rank 0.
                            if v == np - 1 {
                                ctx.send(phys(0, reversed), PhasedMsg::State(engine.drain_state()));
                            }
                            if v == 0 {
                                match ctx.recv_from(merger) {
                                    PhasedMsg::State(pairs) => engine.import_state(&pairs),
                                    _ => unreachable!("the merger ships the merged state"),
                                }
                            }
                        }
                        Reduction::RenumberRanks => {
                            // The merger keeps the state and becomes virtual
                            // rank 0: reverse the virtual order (np-1 ↦ 0).
                            reversed = !reversed;
                        }
                    }
                    sw.ns()
                } else {
                    0
                };
                rm.reduction_ns += red_ns;
                phase_red.push(red_ns);
                engine.reset_phase_counters();
            }
            rm.engine = engine.metrics().clone();
            (engine.into_histogram(), rm, phase_red)
        },
    );

    let mut total = ReuseHistogram::new();
    let mut ranks = Vec::with_capacity(np);
    let mut phased = PhasedMetrics::default();
    for (h, rm, red) in results {
        total.merge(&h);
        ranks.push(rm);
        phased.phases = phased.phases.max(red.len() as u64);
        if phased.phase_reduction_ns.len() < red.len() {
            phased.phase_reduction_ns.resize(red.len(), 0);
        }
        for (k, ns) in red.into_iter().enumerate() {
            phased.phase_reduction_ns[k] = phased.phase_reduction_ns[k].max(ns);
        }
    }
    ranks.sort_by_key(|rm| rm.rank);
    (total, ranks, phased)
}

/// Degenerate single-rank streaming: plain incremental Algorithm 1 over
/// batches. `phases` counts input batches; there is no reduction, so
/// `phase_reduction_ns` stays empty.
fn phased_single_rank<T: ReuseTree + Default, S: AddressStream>(
    mut source: S,
    bound: Option<u64>,
) -> (ReuseHistogram, Vec<RankMetrics>, PhasedMetrics) {
    let mut analyzer: crate::seq::SequentialAnalyzer<T> =
        crate::seq::SequentialAnalyzer::new(bound);
    let mut rm = RankMetrics::default();
    let mut phased = PhasedMetrics::default();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if source.fill(&mut buf, 1 << 16) == 0 {
            break;
        }
        phased.phases += 1;
        rm.refs += buf.len() as u64;
        let sw = Stopwatch::start();
        analyzer.process_all(&buf);
        rm.chunk_ns += sw.ns();
    }
    rm.engine = analyzer.metrics().clone();
    (analyzer.finish(), vec![rm], phased)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_trace::SliceStream;
    use parda_tree::SplayTree;
    use proptest::prelude::*;

    #[test]
    fn phased_matches_offline_on_small_trace() {
        let trace: Vec<Addr> = "dacbccgefafbcmtmacfbdcac".bytes().map(u64::from).collect();
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for np in [1usize, 2, 3, 4] {
            for chunk in [1usize, 2, 4, 100] {
                for reduction in [Reduction::ShipToRankZero, Reduction::RenumberRanks] {
                    let hist = parda_phased_with::<SplayTree, _>(
                        SliceStream::new(&trace),
                        chunk,
                        &PardaConfig::with_ranks(np),
                        reduction,
                    );
                    assert_eq!(hist, seq, "np={np} chunk={chunk} {reduction:?}");
                }
            }
        }
    }

    #[test]
    fn phase_boundary_splitting_reuse_pairs() {
        // Reuse pairs straddling phase boundaries exercise the global-state
        // carry: [0..k] then the same block again in the next phase.
        let mut trace: Vec<Addr> = (0..32).collect();
        trace.extend(0..32u64);
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for reduction in [Reduction::ShipToRankZero, Reduction::RenumberRanks] {
            let hist = parda_phased_with::<SplayTree, _>(
                SliceStream::new(&trace),
                8, // np*C = 32: the second lap lands entirely in phase 2
                &PardaConfig::with_ranks(4),
                reduction,
            );
            assert_eq!(hist, seq, "{reduction:?}");
            assert_eq!(hist.count(31), 32, "each element reused at distance 31");
        }
    }

    #[test]
    fn renumbering_survives_many_phases() {
        // Odd numbers of phases leave the virtual order reversed; even
        // numbers restore it. Run enough phases to exercise both parities
        // with state resident on both ends.
        let trace: Vec<Addr> = (0..3_000).map(|i| i % 100).collect();
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for chunk in [10usize, 17, 100] {
            let hist = parda_phased_with::<SplayTree, _>(
                SliceStream::new(&trace),
                chunk,
                &PardaConfig::with_ranks(3),
                Reduction::RenumberRanks,
            );
            assert_eq!(hist, seq, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        for reduction in [Reduction::ShipToRankZero, Reduction::RenumberRanks] {
            let hist = parda_phased_with::<SplayTree, _>(
                SliceStream::new(&[]),
                16,
                &PardaConfig::with_ranks(3),
                reduction,
            );
            assert_eq!(hist.total(), 0, "{reduction:?}");
        }
    }

    #[test]
    fn ragged_final_phase() {
        // 100 refs with np*C = 48: two full phases + one ragged (4 refs).
        let trace: Vec<Addr> = (0..100).map(|i| i % 10).collect();
        let seq = analyze_sequential::<SplayTree>(&trace, None);
        for reduction in [Reduction::ShipToRankZero, Reduction::RenumberRanks] {
            let hist = parda_phased_with::<SplayTree, _>(
                SliceStream::new(&trace),
                16,
                &PardaConfig::with_ranks(3),
                reduction,
            );
            assert_eq!(hist, seq, "{reduction:?}");
        }
    }

    #[test]
    fn bounded_phased_respects_contract() {
        let trace: Vec<Addr> = (0..1_000).map(|i| (i * 13) % 101).collect();
        let full = analyze_sequential::<SplayTree>(&trace, None);
        let cfg = PardaConfig::with_ranks(3).bounded(16);
        for reduction in [Reduction::ShipToRankZero, Reduction::RenumberRanks] {
            let hist =
                parda_phased_with::<SplayTree, _>(SliceStream::new(&trace), 32, &cfg, reduction);
            assert_eq!(hist.total(), full.total(), "{reduction:?}");
            for d in 0..16u64 {
                assert_eq!(hist.count(d), full.count(d), "{reduction:?} bucket {d}");
            }
            for cap in 1..=16u64 {
                assert_eq!(
                    hist.miss_count(cap),
                    full.miss_count(cap),
                    "{reduction:?} capacity {cap}"
                );
            }
        }
    }

    proptest! {
        /// Streaming = offline, for every trace, rank count, phase size,
        /// and reduction strategy.
        #[test]
        fn phased_equals_offline(
            trace in proptest::collection::vec(0u64..32, 0..250),
            np in 1usize..5,
            chunk in 1usize..40,
            renumber in any::<bool>(),
        ) {
            let seq = analyze_sequential::<SplayTree>(&trace, None);
            let reduction = if renumber { Reduction::RenumberRanks } else { Reduction::ShipToRankZero };
            let hist = parda_phased_with::<SplayTree, _>(
                SliceStream::new(&trace),
                chunk,
                &PardaConfig::with_ranks(np),
                reduction,
            );
            prop_assert_eq!(hist, seq);
        }
    }
}

//! Synthetic address-stream generators.
//!
//! Two families:
//!
//! * **pattern generators** ([`CyclicGen`], [`SequentialGen`], [`UniformGen`],
//!   [`ZipfGen`], [`PhasedGen`]) produce classic access patterns whose reuse
//!   behaviour is analytically known — ideal for tests;
//! * the **model-driven generator** ([`StackDistGen`]) produces a trace whose
//!   reuse-distance *distribution* follows a prescribed [`ReuseProfile`] with
//!   an exact target footprint `(N, M)`. This is how the SPEC CPU2006
//!   workload stand-ins ([`crate::spec`]) are realized: the paper's
//!   evaluation depends on N, M and the locality mix, all of which this
//!   generator pins down explicitly.

use crate::alias::{zipf_weights, AliasTable};
use crate::{Addr, AddressStream, LruStack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cycle over a working set of `m` consecutive addresses.
///
/// After the first lap, every reference has reuse distance `m - 1` — the
/// LRU-adversarial pattern (zero hits for any cache smaller than `m`).
#[derive(Clone, Debug)]
pub struct CyclicGen {
    m: u64,
    base: Addr,
    pos: u64,
}

impl CyclicGen {
    /// Cycle over `base..base + m`.
    pub fn new(m: u64, base: Addr) -> Self {
        assert!(m > 0);
        Self { m, base, pos: 0 }
    }
}

impl AddressStream for CyclicGen {
    fn next_addr(&mut self) -> Option<Addr> {
        let a = self.base + self.pos;
        self.pos = (self.pos + 1) % self.m;
        Some(a)
    }
}

/// Strictly increasing addresses — every reference is a cold miss.
#[derive(Clone, Debug)]
pub struct SequentialGen {
    next: Addr,
    stride: u64,
}

impl SequentialGen {
    /// Start at `base`, advancing by `stride` each reference.
    pub fn new(base: Addr, stride: u64) -> Self {
        assert!(stride > 0);
        Self { next: base, stride }
    }
}

impl AddressStream for SequentialGen {
    fn next_addr(&mut self) -> Option<Addr> {
        let a = self.next;
        self.next = self.next.wrapping_add(self.stride);
        Some(a)
    }
}

/// Uniformly random references over a working set of `m` addresses.
#[derive(Clone, Debug)]
pub struct UniformGen {
    m: u64,
    base: Addr,
    rng: StdRng,
}

impl UniformGen {
    /// Uniform over `base..base + m`, deterministic in `seed`.
    pub fn new(m: u64, base: Addr, seed: u64) -> Self {
        assert!(m > 0);
        Self {
            m,
            base,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AddressStream for UniformGen {
    fn next_addr(&mut self) -> Option<Addr> {
        Some(self.base + self.rng.gen_range(0..self.m))
    }
}

/// Zipf-distributed references: address `base + k` has popularity
/// ∝ 1/(k+1)^θ. Models skewed key popularity (caches love it).
#[derive(Clone, Debug)]
pub struct ZipfGen {
    table: AliasTable,
    base: Addr,
    rng: StdRng,
}

impl ZipfGen {
    /// Zipf(θ) over `base..base + m`, deterministic in `seed`.
    pub fn new(m: usize, theta: f64, base: Addr, seed: u64) -> Self {
        Self {
            table: AliasTable::new(&zipf_weights(m, theta)),
            base,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AddressStream for ZipfGen {
    fn next_addr(&mut self) -> Option<Addr> {
        Some(self.base + self.table.sample(&mut self.rng) as Addr)
    }
}

/// Program-phase behaviour: play each inner stream for a fixed number of
/// references, then move to the next, optionally looping (models the phase
/// transitions that reuse-distance phase detection targets).
pub struct PhasedGen {
    phases: Vec<(usize, Box<dyn AddressStream + Send>)>,
    current: usize,
    emitted_in_phase: usize,
    repeat: bool,
}

impl PhasedGen {
    /// `phases` is a list of `(length, stream)` pairs. With `repeat`, the
    /// sequence loops forever; otherwise the stream ends after the last
    /// phase.
    pub fn new(phases: Vec<(usize, Box<dyn AddressStream + Send>)>, repeat: bool) -> Self {
        assert!(!phases.is_empty());
        assert!(phases.iter().all(|(len, _)| *len > 0));
        Self {
            phases,
            current: 0,
            emitted_in_phase: 0,
            repeat,
        }
    }
}

impl AddressStream for PhasedGen {
    fn next_addr(&mut self) -> Option<Addr> {
        if self.current >= self.phases.len() {
            return None;
        }
        let (len, stream) = &mut self.phases[self.current];
        let a = stream.next_addr();
        self.emitted_in_phase += 1;
        if self.emitted_in_phase >= *len {
            self.emitted_in_phase = 0;
            self.current += 1;
            if self.current >= self.phases.len() && self.repeat {
                self.current = 0;
            }
        }
        a
    }
}

/// Markov-chain working-set generator: a set of states, each referencing
/// its own working set uniformly, with per-step transition probabilities —
/// the standard model behind locality *phase* behaviour (soft transitions,
/// unlike [`PhasedGen`]'s hard schedule).
pub struct MarkovGen {
    /// Per-state `(base, working_set_size)`.
    states: Vec<(Addr, u64)>,
    /// Row-stochastic transition matrix, flattened row-major.
    transitions: Vec<f64>,
    current: usize,
    rng: StdRng,
}

impl MarkovGen {
    /// Build from per-state working sets and a row-stochastic transition
    /// matrix (`transitions[i][j]` = P(state i → j), checked to sum to 1).
    pub fn new(states: Vec<(Addr, u64)>, transitions: Vec<Vec<f64>>, seed: u64) -> Self {
        let k = states.len();
        assert!(k > 0, "need at least one state");
        assert!(
            states.iter().all(|&(_, m)| m > 0),
            "working sets must be non-empty"
        );
        assert_eq!(transitions.len(), k, "square transition matrix required");
        let mut flat = Vec::with_capacity(k * k);
        for row in &transitions {
            assert_eq!(row.len(), k, "square transition matrix required");
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9 && row.iter().all(|&p| p >= 0.0),
                "rows must be stochastic (sum {sum})"
            );
            flat.extend_from_slice(row);
        }
        Self {
            states,
            transitions: flat,
            current: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Two-state generator that dwells ~`dwell` references per state —
    /// convenient for phase-detection tests.
    pub fn two_phase(set_a: (Addr, u64), set_b: (Addr, u64), dwell: f64, seed: u64) -> Self {
        assert!(dwell >= 1.0);
        let stay = 1.0 - 1.0 / dwell;
        Self::new(
            vec![set_a, set_b],
            vec![vec![stay, 1.0 - stay], vec![1.0 - stay, stay]],
            seed,
        )
    }

    /// The state generating the next reference (diagnostic).
    pub fn current_state(&self) -> usize {
        self.current
    }
}

impl AddressStream for MarkovGen {
    fn next_addr(&mut self) -> Option<Addr> {
        let (base, m) = self.states[self.current];
        let addr = base + self.rng.gen_range(0..m);
        // Transition after emitting.
        let k = self.states.len();
        let mut u: f64 = self.rng.gen();
        let row = &self.transitions[self.current * k..(self.current + 1) * k];
        let mut next = k - 1;
        for (j, &p) in row.iter().enumerate() {
            if u < p {
                next = j;
                break;
            }
            u -= p;
        }
        self.current = next;
        Some(addr)
    }
}

/// One mixture component of a [`ReuseProfile`] distance distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum ComponentKind {
    /// Uniform over `[lo, hi]` (inclusive), in absolute distance units;
    /// callers scale the range to the footprint M when building profiles.
    Uniform { lo: u64, hi: u64 },
    /// Geometric with the given mean (spatial/temporal locality near the
    /// stack top).
    Geometric { mean: f64 },
    /// Lomax (Pareto II) heavy tail: `scale * ((1-u)^(-1/shape) - 1)`.
    /// Smaller `shape` ⇒ heavier tail.
    Pareto { scale: f64, shape: f64 },
    /// A point mass at distance `d` (cyclic sweeps).
    Point { d: u64 },
}

/// A weighted mixture component.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceComponent {
    /// Relative weight within the mixture (need not be normalized).
    pub weight: f64,
    /// The component distribution.
    pub kind: ComponentKind,
}

/// Target reuse-distance distribution for [`StackDistGen`].
///
/// Distances sampled from the mixture are clamped to the current stack
/// depth, so the realized distribution is the prescribed one conditioned on
/// feasibility; cold misses are injected separately to hit the target
/// footprint exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseProfile {
    /// Mixture components for re-reference distances.
    pub components: Vec<DistanceComponent>,
}

impl ReuseProfile {
    /// A profile with the given components.
    pub fn new(components: Vec<DistanceComponent>) -> Self {
        assert!(
            !components.is_empty(),
            "profile needs at least one component"
        );
        assert!(
            components.iter().any(|c| c.weight > 0.0),
            "profile needs positive total weight"
        );
        Self { components }
    }

    /// Strong temporal locality: geometric distances with the given mean.
    pub fn geometric(mean: f64) -> Self {
        Self::new(vec![DistanceComponent {
            weight: 1.0,
            kind: ComponentKind::Geometric { mean },
        }])
    }

    /// Sample one re-reference distance.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, weights: &AliasTable) -> u64 {
        let component = &self.components[weights.sample(rng)];
        match component.kind {
            ComponentKind::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            ComponentKind::Geometric { mean } => {
                let p = 1.0 / (mean.max(0.0) + 1.0);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (u.ln() / (1.0 - p).ln()).floor() as u64
            }
            ComponentKind::Pareto { scale, shape } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (scale * (u.powf(-1.0 / shape) - 1.0)).floor() as u64
            }
            ComponentKind::Point { d } => d,
        }
    }
}

/// Model-driven generator: produces exactly `n` references touching exactly
/// `m` distinct addresses (provided `n ≥ m`), with re-reference distances
/// drawn from a [`ReuseProfile`].
///
/// Cold misses are spread uniformly over the trace by an adaptive rate
/// (remaining cold / remaining references), mirroring how real programs
/// keep allocating as they run.
///
/// # Examples
///
/// ```
/// use parda_trace::gen::{ReuseProfile, StackDistGen};
/// use parda_trace::AddressStream;
///
/// let mut gen = StackDistGen::new(10_000, 500, ReuseProfile::geometric(8.0), 42);
/// let trace = gen.take_trace(10_000);
/// assert_eq!(trace.len(), 10_000);
/// assert_eq!(trace.distinct(), 500);
/// ```
pub struct StackDistGen {
    stack: LruStack,
    profile: ReuseProfile,
    weights: AliasTable,
    rng: StdRng,
    target_n: u64,
    target_m: u64,
    emitted: u64,
    next_new: Addr,
}

impl StackDistGen {
    /// Address space base for generated addresses (keeps them looking like
    /// heap pointers in hex dumps; no semantic significance).
    const BASE: Addr = 0x1000_0000;

    /// Build a generator targeting `n` references over `m` distinct
    /// addresses with the given profile, deterministic in `seed`.
    pub fn new(n: u64, m: u64, profile: ReuseProfile, seed: u64) -> Self {
        assert!(m > 0, "footprint must be positive");
        assert!(n >= m, "need at least one reference per distinct address");
        let weights: Vec<f64> = profile.components.iter().map(|c| c.weight).collect();
        Self {
            stack: LruStack::new(),
            weights: AliasTable::new(&weights),
            profile,
            rng: StdRng::seed_from_u64(seed),
            target_n: n,
            target_m: m,
            emitted: 0,
            next_new: Self::BASE,
        }
    }

    /// Distinct addresses emitted so far.
    pub fn distinct_so_far(&self) -> u64 {
        self.stack.len() as u64
    }

    fn emit_cold(&mut self) -> Addr {
        let a = self.next_new;
        self.next_new += 8; // word-granular, like the paper's Pin traces
        self.stack.push_new(a);
        a
    }
}

impl AddressStream for StackDistGen {
    fn next_addr(&mut self) -> Option<Addr> {
        let live = self.stack.len() as u64;
        let cold_left = self.target_m.saturating_sub(live);
        let steps_left = self.target_n.saturating_sub(self.emitted);
        self.emitted += 1;

        // Adaptive cold-miss injection: exactly `cold_left` of the next
        // `steps_left` references must be first touches.
        let cold = if live == 0 {
            true
        } else if cold_left == 0 || steps_left == 0 {
            false
        } else if cold_left >= steps_left {
            true
        } else {
            self.rng.gen_range(0..steps_left) < cold_left
        };

        if cold {
            return Some(self.emit_cold());
        }
        let d = self.profile.sample(&mut self.rng, &self.weights);
        let depth = (d as usize).min(self.stack.len() - 1);
        Some(self.stack.access_depth(depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressStream;

    #[test]
    fn cyclic_covers_working_set() {
        let mut g = CyclicGen::new(4, 100);
        let t = g.take_trace(12);
        assert_eq!(t.as_slice()[..4], [100, 101, 102, 103]);
        assert_eq!(t.as_slice()[4..8], [100, 101, 102, 103]);
        assert_eq!(t.distinct(), 4);
    }

    #[test]
    fn sequential_never_repeats() {
        let mut g = SequentialGen::new(0, 8);
        let t = g.take_trace(1000);
        assert_eq!(t.distinct(), 1000);
        assert_eq!(t.as_slice()[1], 8);
    }

    #[test]
    fn uniform_stays_in_range_and_is_seeded() {
        let t1 = UniformGen::new(50, 1000, 9).take_trace(5000);
        let t2 = UniformGen::new(50, 1000, 9).take_trace(5000);
        assert_eq!(t1, t2, "same seed must reproduce the trace");
        assert!(t1.as_slice().iter().all(|&a| (1000..1050).contains(&a)));
        assert_eq!(t1.distinct(), 50, "5000 draws should cover all 50");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let t = ZipfGen::new(1000, 1.0, 0, 5).take_trace(20_000);
        let head = t.as_slice().iter().filter(|&&a| a < 10).count();
        // Zipf(1) over 1000: top-10 mass ≈ H(10)/H(1000) ≈ 2.93/7.49 ≈ 39%.
        assert!(
            (0.30..0.50).contains(&(head as f64 / 20_000.0)),
            "top-10 frequency {head} out of expected band"
        );
    }

    #[test]
    fn phased_switches_working_sets() {
        let phases: Vec<(usize, Box<dyn AddressStream + Send>)> = vec![
            (10, Box::new(CyclicGen::new(2, 0))),
            (10, Box::new(CyclicGen::new(2, 100))),
        ];
        let mut g = PhasedGen::new(phases, false);
        let t = g.take_trace(100);
        assert_eq!(t.len(), 20, "non-repeating phases end the stream");
        assert!(t.as_slice()[..10].iter().all(|&a| a < 2));
        assert!(t.as_slice()[10..].iter().all(|&a| a >= 100));
    }

    #[test]
    fn phased_repeat_loops_forever() {
        let phases: Vec<(usize, Box<dyn AddressStream + Send>)> =
            vec![(3, Box::new(SequentialGen::new(0, 1)))];
        let mut g = PhasedGen::new(phases, true);
        let t = g.take_trace(10);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn markov_gen_visits_both_working_sets() {
        let mut g = MarkovGen::two_phase((0, 32), (1_000, 32), 500.0, 3);
        let t = g.take_trace(20_000);
        let in_a = t.as_slice().iter().filter(|&&a| a < 32).count();
        let in_b = t.len() - in_a;
        // Symmetric chain: roughly half the time in each state.
        assert!(in_a > 5_000 && in_b > 5_000, "a={in_a} b={in_b}");
        // Dwell ~500 ⇒ references cluster in runs, not alternate per-step:
        // count state flips along the trace.
        let flips = t
            .as_slice()
            .windows(2)
            .filter(|w| (w[0] < 32) != (w[1] < 32))
            .count();
        assert!(
            flips < 200,
            "expected long dwells, saw {flips} flips in 20k refs"
        );
    }

    #[test]
    fn markov_gen_is_deterministic_and_validated() {
        let a = MarkovGen::two_phase((0, 8), (100, 8), 50.0, 9).take_trace(1_000);
        let b = MarkovGen::two_phase((0, 8), (100, 8), 50.0, 9).take_trace(1_000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "stochastic")]
    fn markov_gen_rejects_bad_matrix() {
        MarkovGen::new(
            vec![(0, 8), (100, 8)],
            vec![vec![0.5, 0.4], vec![0.5, 0.5]],
            1,
        );
    }

    #[test]
    fn stack_dist_gen_hits_exact_footprint() {
        for (n, m) in [(1000u64, 100u64), (5000, 5000), (500, 1), (10_000, 9_999)] {
            let mut g = StackDistGen::new(n, m, ReuseProfile::geometric(4.0), 1);
            let t = g.take_trace(n as usize);
            assert_eq!(t.len(), n as usize);
            assert_eq!(t.distinct(), m as usize, "n={n} m={m}");
        }
    }

    #[test]
    fn stack_dist_gen_is_deterministic() {
        let profile = ReuseProfile::new(vec![
            DistanceComponent {
                weight: 0.7,
                kind: ComponentKind::Geometric { mean: 3.0 },
            },
            DistanceComponent {
                weight: 0.3,
                kind: ComponentKind::Pareto {
                    scale: 10.0,
                    shape: 1.2,
                },
            },
        ]);
        let a = StackDistGen::new(2000, 200, profile.clone(), 77).take_trace(2000);
        let b = StackDistGen::new(2000, 200, profile, 77).take_trace(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_profile_yields_short_distances() {
        // With a geometric(2) profile, most re-references should hit near the
        // stack top: verify via a simple LRU position check.
        let mut g = StackDistGen::new(20_000, 100, ReuseProfile::geometric(2.0), 3);
        let t = g.take_trace(20_000);
        let mut stack: Vec<Addr> = Vec::new();
        let mut short = 0u64;
        let mut finite = 0u64;
        for &a in t.as_slice() {
            if let Some(pos) = stack.iter().position(|&x| x == a) {
                finite += 1;
                if pos <= 4 {
                    short += 1;
                }
                stack.remove(pos);
            }
            stack.insert(0, a);
        }
        // Geometric(mean 2) puts ~87% of mass at d ≤ 4 before clamping.
        assert!(
            short as f64 / finite as f64 > 0.75,
            "short fraction {}",
            short as f64 / finite as f64
        );
    }

    #[test]
    fn point_profile_reproduces_cyclic_distances() {
        let profile = ReuseProfile::new(vec![DistanceComponent {
            weight: 1.0,
            kind: ComponentKind::Point { d: 9 },
        }]);
        let mut g = StackDistGen::new(1000, 10, profile, 1);
        let t = g.take_trace(1000);
        assert_eq!(t.distinct(), 10);
        // Once the footprint is established, a Point(9) profile over a
        // 10-element stack always touches the LRU element — a cyclic sweep.
        let tail = &t.as_slice()[500..];
        let mut tail_distinct = std::collections::HashSet::new();
        tail_distinct.extend(tail.iter().copied());
        assert_eq!(tail_distinct.len(), 10, "sweep must keep covering all 10");
    }
}

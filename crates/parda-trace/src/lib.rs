//! Memory reference traces: the input side of reuse-distance analysis.
//!
//! The original PARDA consumes address traces produced by Pin-instrumented
//! SPEC CPU2006 binaries. Those binaries and their inputs are proprietary,
//! so this crate supplies the synthetic equivalent (see DESIGN.md §2):
//!
//! * [`Trace`] — an in-memory address sequence with summary statistics;
//! * [`AddressStream`] — the pull interface connecting generators, files,
//!   and the streaming (multi-phase) analyzer;
//! * [`gen`] — composable synthetic generators, including the model-driven
//!   [`gen::StackDistGen`] that produces traces with a *prescribed* reuse
//!   distance profile;
//! * [`spec`] — per-benchmark workload models carrying the paper's Table IV
//!   parameters (M, N, original runtime) plus a locality profile, scaled to
//!   laptop-size traces;
//! * [`io`] — compact binary trace formats: flat v1 (raw or delta-varint)
//!   and block-framed v2 with a seekable index, parallel frame decode, and
//!   (v2.1) CRC32C frame checksums;
//! * [`recover`] — corruption recovery: [`recover::Degradation`] policies,
//!   the lossy frame decoder with resync scan, and CRC verification;
//! * [`stream`] — [`stream::FramedStream`], an [`AddressStream`] that
//!   decodes v2 frames on background threads while the analyzer runs;
//! * [`LruStack`] — an O(log M) indexable LRU stack (Fenwick-backed) used
//!   by the generators to realize target distance distributions.

pub mod alias;
pub mod gen;
pub mod io;
pub mod lru_stack;
pub mod recover;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod xform;

pub use lru_stack::LruStack;
pub use parda_tree::fenwick::{self, Fenwick};
pub use recover::{
    decode_tagged_trace_recovering, decode_trace_recovering, load_trace_recovering, verify_trace,
    Degradation, VerifyReport,
};
pub use stats::TraceStats;

/// A data address (word-granular in the paper's experiments).
pub type Addr = u64;

/// An in-memory data reference trace (`Ψ` in the paper's notation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    addrs: Vec<Addr>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an address vector.
    pub fn from_vec(addrs: Vec<Addr>) -> Self {
        Self { addrs }
    }

    /// Trace built from ASCII labels, for paper-example tests:
    /// `Trace::from_labels("dacbccgefa")`.
    pub fn from_labels(labels: &str) -> Self {
        Self {
            addrs: labels.bytes().map(|b| b as Addr).collect(),
        }
    }

    /// Number of references (`N`).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Number of distinct addresses (`M`). O(N) with a hash set.
    pub fn distinct(&self) -> usize {
        let mut set = parda_hash::FxHashSet::default();
        set.extend(self.addrs.iter().copied());
        set.len()
    }

    /// The raw address slice.
    pub fn as_slice(&self) -> &[Addr] {
        &self.addrs
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Addr> {
        self.addrs
    }

    /// Append one reference.
    pub fn push(&mut self, addr: Addr) {
        self.addrs.push(addr);
    }

    /// Split into `p` contiguous chunks as evenly as possible (the paper's
    /// chunking: rank `i` gets references `[offsets[i], offsets[i+1])`).
    /// Every chunk is non-empty when `p ≤ len`; trailing chunks may be empty
    /// otherwise.
    pub fn chunks(&self, p: usize) -> Vec<&[Addr]> {
        chunk_slice(&self.addrs, p)
    }

    /// Summary statistics (N, M, address span).
    pub fn stats(&self) -> TraceStats {
        TraceStats::compute(&self.addrs)
    }
}

impl FromIterator<Addr> for Trace {
    fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> Self {
        Self {
            addrs: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = Addr;

    fn index(&self, idx: usize) -> &Addr {
        &self.addrs[idx]
    }
}

/// A thread ID accompanying a tagged reference.
pub type Tid = u32;

/// A thread-tagged reference trace: one thread ID per reference, in the
/// observed global interleaving order. This is the in-memory form of a
/// v2.2 thread-tagged trace file ([`io::write_tagged_trace_v2`]): the
/// shared stream a multi-threaded program actually issued, with enough
/// information to recover each thread's private stream exactly.
///
/// Unlike [`crate::xform`]-style address transforms, the tags are *metadata*
/// carried next to the addresses — threads share one address space, so the
/// same address appearing under two TIDs means true sharing, not a
/// collision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadedTrace {
    addrs: Vec<Addr>,
    tids: Vec<Tid>,
}

impl ThreadedTrace {
    /// Create an empty tagged trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap parallel address/TID vectors (must be the same length).
    pub fn from_parts(addrs: Vec<Addr>, tids: Vec<Tid>) -> Self {
        assert_eq!(
            addrs.len(),
            tids.len(),
            "one thread ID per reference required"
        );
        Self { addrs, tids }
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Append one reference issued by `tid`.
    pub fn push(&mut self, tid: Tid, addr: Addr) {
        self.addrs.push(addr);
        self.tids.push(tid);
    }

    /// The interleaved address stream (tags stripped).
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// The per-reference thread IDs, parallel to [`ThreadedTrace::addrs`].
    pub fn tids(&self) -> &[Tid] {
        &self.tids
    }

    /// Distinct thread IDs, ascending.
    pub fn thread_ids(&self) -> Vec<Tid> {
        let mut ids: Vec<Tid> = {
            let mut set = parda_hash::FxHashSet::default();
            set.extend(self.tids.iter().copied());
            set.into_iter().collect()
        };
        ids.sort_unstable();
        ids
    }

    /// Split into per-thread traces, preserving each thread's program
    /// order. Returned pairs are sorted by thread ID.
    pub fn per_thread(&self) -> Vec<(Tid, Trace)> {
        let ids = self.thread_ids();
        let mut split: Vec<(Tid, Trace)> = ids.into_iter().map(|id| (id, Trace::new())).collect();
        let slot: parda_hash::FxHashMap<Tid, usize> = split
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
        for (&tid, &addr) in self.tids.iter().zip(&self.addrs) {
            split[slot[&tid]].1.push(addr);
        }
        split
    }

    /// Consume into `(addrs, tids)`.
    pub fn into_parts(self) -> (Vec<Addr>, Vec<Tid>) {
        (self.addrs, self.tids)
    }
}

/// Split any slice into `p` contiguous, maximally even chunks.
///
/// The first `len % p` chunks carry one extra element, so sizes differ by at
/// most one — the load-balance property Parda's chunk assignment relies on.
pub fn chunk_slice<T>(slice: &[T], p: usize) -> Vec<&[T]> {
    assert!(p > 0, "cannot split into zero chunks");
    let base = slice.len() / p;
    let extra = slice.len() % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let size = base + usize::from(i < extra);
        out.push(&slice[start..start + size]);
        start += size;
    }
    debug_assert_eq!(start, slice.len());
    out
}

/// A pull-based source of addresses: the interface between trace producers
/// (generators, files, pinsim programs) and consumers (analyzers, pipes).
///
/// `None` marks the end of the stream. Implementations should be cheap per
/// call; batch consumers use [`AddressStream::fill`].
pub trait AddressStream {
    /// Produce the next address, or `None` at end of stream.
    fn next_addr(&mut self) -> Option<Addr>;

    /// Append up to `n` addresses to `buf`; returns how many were produced
    /// (less than `n` only at end of stream).
    fn fill(&mut self, buf: &mut Vec<Addr>, n: usize) -> usize {
        let mut produced = 0;
        while produced < n {
            match self.next_addr() {
                Some(a) => {
                    buf.push(a);
                    produced += 1;
                }
                None => break,
            }
        }
        produced
    }

    /// Collect up to `n` addresses into a [`Trace`].
    fn take_trace(&mut self, n: usize) -> Trace
    where
        Self: Sized,
    {
        // Cap the eager reservation: callers may pass "effectively all"
        // bounds far larger than the stream will produce.
        let mut buf = Vec::with_capacity(n.min(1 << 20));
        self.fill(&mut buf, n);
        Trace::from_vec(buf)
    }
}

/// Stream over a borrowed slice (used to replay in-memory traces).
pub struct SliceStream<'a> {
    slice: &'a [Addr],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream the given addresses once, in order.
    pub fn new(slice: &'a [Addr]) -> Self {
        Self { slice, pos: 0 }
    }
}

impl AddressStream for SliceStream<'_> {
    fn next_addr(&mut self) -> Option<Addr> {
        let a = self.slice.get(self.pos).copied();
        self.pos += a.is_some() as usize;
        a
    }

    fn fill(&mut self, buf: &mut Vec<Addr>, n: usize) -> usize {
        let take = n.min(self.slice.len() - self.pos);
        buf.extend_from_slice(&self.slice[self.pos..self.pos + take]);
        self.pos += take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_matches_bytes() {
        let t = Trace::from_labels("dacb");
        assert_eq!(
            t.as_slice(),
            &[b'd' as u64, b'a' as u64, b'c' as u64, b'b' as u64]
        );
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct(), 4);
    }

    #[test]
    fn table1_trace_has_n10_m7() {
        let t = Trace::from_labels("dacbccgefa");
        assert_eq!(t.len(), 10);
        assert_eq!(t.distinct(), 7);
    }

    #[test]
    fn chunks_are_even_and_cover() {
        let t: Trace = (0..10u64).collect();
        let chunks = t.chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 3);
        assert_eq!(chunks[2].len(), 3);
        let flat: Vec<u64> = chunks.concat();
        assert_eq!(flat, t.into_vec());
    }

    #[test]
    fn chunks_with_more_parts_than_items() {
        let t: Trace = (0..2u64).collect();
        let chunks = t.chunks(5);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![1, 1, 0, 0, 0]
        );
    }

    #[test]
    fn slice_stream_yields_all_then_none() {
        let data = [1u64, 2, 3];
        let mut s = SliceStream::new(&data);
        assert_eq!(s.next_addr(), Some(1));
        let mut buf = Vec::new();
        assert_eq!(s.fill(&mut buf, 10), 2);
        assert_eq!(buf, vec![2, 3]);
        assert_eq!(s.next_addr(), None);
        assert_eq!(s.fill(&mut buf, 10), 0);
    }

    #[test]
    fn take_trace_caps_at_stream_end() {
        let data = [7u64; 5];
        let mut s = SliceStream::new(&data);
        let t = s.take_trace(100);
        assert_eq!(t.len(), 5);
        assert_eq!(t.distinct(), 1);
    }
}

//! Trace transformations applied before analysis.
//!
//! The paper analyzes word-granular address traces; practical cache
//! questions are usually asked at *line* granularity (a 64-byte line hides
//! spatial locality inside it). These helpers transform traces between
//! granularities and cut them down to regions or samples of interest.

use crate::{Addr, Trace};

/// Collapse byte/word addresses to cache-line numbers (`addr >> block_bits`).
///
/// Reuse distances of the result are line-granular: spatially adjacent
/// accesses fold into repeats, so `to_lines(t, 6)` answers "how does this
/// trace behave in 64-byte-line caches".
pub fn to_lines(trace: &Trace, block_bits: u32) -> Trace {
    assert!(block_bits < 64);
    trace.as_slice().iter().map(|&a| a >> block_bits).collect()
}

/// Keep only references into `[start, end)`.
pub fn filter_range(trace: &Trace, start: Addr, end: Addr) -> Trace {
    assert!(start < end);
    trace
        .as_slice()
        .iter()
        .copied()
        .filter(|&a| (start..end).contains(&a))
        .collect()
}

/// Keep every `k`-th reference (systematic temporal subsampling — note this
/// *biases* reuse distances, unlike the spatial sampling in
/// `parda_core::sampled`; exposed for comparison experiments).
pub fn decimate(trace: &Trace, k: usize) -> Trace {
    assert!(k > 0);
    trace.as_slice().iter().copied().step_by(k).collect()
}

/// Concatenate traces back to back (e.g. repeated program runs).
pub fn concat(traces: &[&Trace]) -> Trace {
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    for t in traces {
        out.extend_from_slice(t.as_slice());
    }
    Trace::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_lines_folds_spatial_neighbours() {
        let t = Trace::from_vec(vec![0, 8, 63, 64, 65, 128]);
        let lines = to_lines(&t, 6);
        assert_eq!(lines.as_slice(), &[0, 0, 0, 1, 1, 2]);
        assert_eq!(lines.distinct(), 3);
    }

    #[test]
    fn to_lines_zero_bits_is_identity() {
        let t = Trace::from_vec(vec![5, 7, 5]);
        assert_eq!(to_lines(&t, 0), t);
    }

    #[test]
    fn filter_range_keeps_order() {
        let t = Trace::from_vec(vec![1, 100, 2, 200, 3]);
        let f = filter_range(&t, 0, 10);
        assert_eq!(f.as_slice(), &[1, 2, 3]);
        assert!(filter_range(&t, 500, 600).is_empty());
    }

    #[test]
    fn decimate_takes_every_kth() {
        let t: Trace = (0..10u64).collect();
        assert_eq!(decimate(&t, 3).as_slice(), &[0, 3, 6, 9]);
        assert_eq!(decimate(&t, 1), t);
    }

    #[test]
    fn concat_appends() {
        let a = Trace::from_vec(vec![1, 2]);
        let b = Trace::from_vec(vec![3]);
        assert_eq!(concat(&[&a, &b, &a]).as_slice(), &[1, 2, 3, 1, 2]);
    }

    #[test]
    fn line_granularity_shrinks_distances() {
        use crate::{AddressStream, SliceStream};
        let _ = SliceStream::new(&[]); // silence unused import if cfg changes
                                       // A sequential byte scan: word-granular distances are ∞ (no reuse),
                                       // line-granular shows 7 repeats per 64-byte line at distance 0.
        let t: Trace = (0..512u64).step_by(8).collect();
        assert_eq!(t.distinct(), 64);
        let lines = to_lines(&t, 6);
        assert_eq!(lines.distinct(), 8);
        assert_eq!(lines.len(), 64);
        let mut stream = SliceStream::new(lines.as_slice());
        let again = stream.take_trace(64);
        assert_eq!(again, lines);
    }
}

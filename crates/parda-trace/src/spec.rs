//! SPEC CPU2006 workload models — the stand-ins for the paper's traces.
//!
//! The paper's Table IV evaluates 15 SPEC CPU2006 benchmarks, reporting for
//! each the trace length `N`, distinct-address count `M`, the uninstrumented
//! runtime (`Orig`), the Pin and pipe overheads, and the sequential
//! (Olken81) and Parda analysis times. SPEC binaries and inputs are
//! proprietary and the full traces run to 10¹⁰–10¹¹ references, so this
//! module captures each benchmark as a *model*:
//!
//! * the paper's measured parameters, verbatim (used for reporting and for
//!   paper-vs-measured comparisons in EXPERIMENTS.md);
//! * a [`LocalityClass`] describing the benchmark's qualitative reuse
//!   behaviour, mapped to a [`ReuseProfile`] mixture;
//! * [`SpecBenchmark::scaled`], which shrinks `(N, M)` to a target trace
//!   length while preserving the paper's M/N ratio, and
//!   [`SpecBenchmark::generator`], which instantiates the model-driven
//!   generator for the scaled workload.

use crate::gen::{ComponentKind, DistanceComponent, ReuseProfile, StackDistGen};

/// Qualitative locality class assigned to each benchmark, mapped to a
/// distance-distribution mixture by [`LocalityClass::profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalityClass {
    /// Large sequential sweeps over big arrays (milc, lbm): reuse distances
    /// cluster near the footprint — hostile to every cache smaller than M.
    Streaming,
    /// Pointer-graph traversal (mcf, astar): heavy-tailed distances.
    PointerChasing,
    /// Blocked/tiled numeric kernels (namd, dealII, calculix, bzip2):
    /// strong short-distance mass plus a block-sized plateau.
    Blocked,
    /// Irregular integer codes (perlbench, gcc, gobmk, sphinx3, soplex):
    /// broad mixture of short, medium, and tail distances.
    Mixed,
    /// Tiny footprint with intense reuse (povray, libquantum).
    SmallFootprint,
}

impl LocalityClass {
    /// The reuse-distance mixture for this class, parameterized by the
    /// (scaled) footprint `m`.
    pub fn profile(self, m: u64) -> ReuseProfile {
        let m = m.max(2);
        let mf = m as f64;
        match self {
            LocalityClass::Streaming => ReuseProfile::new(vec![
                DistanceComponent {
                    weight: 0.15,
                    kind: ComponentKind::Geometric { mean: 4.0 },
                },
                // The sweep: distances within a lap of the footprint.
                DistanceComponent {
                    weight: 0.85,
                    kind: ComponentKind::Uniform {
                        lo: (m * 9 / 10).saturating_sub(1),
                        hi: m - 1,
                    },
                },
            ]),
            LocalityClass::PointerChasing => ReuseProfile::new(vec![
                DistanceComponent {
                    weight: 0.35,
                    kind: ComponentKind::Geometric { mean: 8.0 },
                },
                DistanceComponent {
                    weight: 0.65,
                    kind: ComponentKind::Pareto {
                        scale: mf / 64.0,
                        shape: 0.9,
                    },
                },
            ]),
            LocalityClass::Blocked => ReuseProfile::new(vec![
                DistanceComponent {
                    weight: 0.55,
                    kind: ComponentKind::Geometric { mean: 3.0 },
                },
                // Block-sized reuse plateau.
                DistanceComponent {
                    weight: 0.35,
                    kind: ComponentKind::Uniform {
                        lo: m / 256,
                        hi: m / 16,
                    },
                },
                DistanceComponent {
                    weight: 0.10,
                    kind: ComponentKind::Uniform {
                        lo: m / 2,
                        hi: m - 1,
                    },
                },
            ]),
            LocalityClass::Mixed => ReuseProfile::new(vec![
                DistanceComponent {
                    weight: 0.45,
                    kind: ComponentKind::Geometric { mean: 6.0 },
                },
                DistanceComponent {
                    weight: 0.30,
                    kind: ComponentKind::Uniform { lo: 0, hi: m / 8 },
                },
                DistanceComponent {
                    weight: 0.25,
                    kind: ComponentKind::Pareto {
                        scale: mf / 32.0,
                        shape: 1.1,
                    },
                },
            ]),
            LocalityClass::SmallFootprint => ReuseProfile::new(vec![
                DistanceComponent {
                    weight: 0.70,
                    kind: ComponentKind::Geometric { mean: 5.0 },
                },
                DistanceComponent {
                    weight: 0.30,
                    kind: ComponentKind::Uniform { lo: 0, hi: m - 1 },
                },
            ]),
        }
    }
}

/// One SPEC CPU2006 benchmark: the paper's measured parameters plus our
/// locality model.
#[derive(Clone, Copy, Debug)]
pub struct SpecBenchmark {
    /// SPEC benchmark name as printed in Table IV.
    pub name: &'static str,
    /// Distinct addresses in the paper's trace (`M`).
    pub m_paper: u64,
    /// Trace length in the paper (`N`).
    pub n_paper: u64,
    /// Uninstrumented runtime in seconds (`Orig`).
    pub orig_secs: f64,
    /// Runtime under Pin instrumentation, seconds.
    pub pin_secs: f64,
    /// Pin + pipe transfer time, seconds.
    pub pipe_secs: f64,
    /// Sequential tree-based analysis time, seconds (`Olken81`).
    pub olken_secs: f64,
    /// Parda analysis time on 64 cores, seconds.
    pub parda_secs: f64,
    /// Our qualitative locality model.
    pub locality: LocalityClass,
}

/// Scaled workload parameters produced by [`SpecBenchmark::scaled`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaledWorkload {
    /// Benchmark name.
    pub name: &'static str,
    /// Scaled trace length.
    pub n: u64,
    /// Scaled footprint.
    pub m: u64,
}

impl SpecBenchmark {
    /// Paper slowdown factor of the sequential analyzer (Olken81 / Orig).
    pub fn olken_slowdown(&self) -> f64 {
        self.olken_secs / self.orig_secs
    }

    /// Paper slowdown factor of Parda on 64 cores (Parda / Orig).
    pub fn parda_slowdown(&self) -> f64 {
        self.parda_secs / self.orig_secs
    }

    /// Shrink the workload to `n_target` references, preserving the paper's
    /// M/N ratio (clamped to at least 2 distinct addresses and at most
    /// `n_target`).
    pub fn scaled(&self, n_target: u64) -> ScaledWorkload {
        assert!(n_target >= 2);
        let ratio = self.m_paper as f64 / self.n_paper as f64;
        let m = ((n_target as f64 * ratio).round() as u64).clamp(2, n_target);
        ScaledWorkload {
            name: self.name,
            n: n_target,
            m,
        }
    }

    /// Instantiate the model-driven generator for the scaled workload.
    pub fn generator(&self, n_target: u64, seed: u64) -> StackDistGen {
        let scaled = self.scaled(n_target);
        StackDistGen::new(scaled.n, scaled.m, self.locality.profile(scaled.m), seed)
    }

    /// Look up a benchmark by its Table IV name.
    pub fn by_name(name: &str) -> Option<&'static SpecBenchmark> {
        SPEC2006.iter().find(|b| b.name == name)
    }
}

macro_rules! bench {
    ($name:literal, $m:literal, $n:literal, $orig:literal, $pin:literal, $pipe:literal,
     $olken:literal, $parda:literal, $class:ident) => {
        SpecBenchmark {
            name: $name,
            m_paper: $m,
            n_paper: $n,
            orig_secs: $orig,
            pin_secs: $pin,
            pipe_secs: $pipe,
            olken_secs: $olken,
            parda_secs: $parda,
            locality: LocalityClass::$class,
        }
    };
}

/// The 15 benchmarks of the paper's Table IV, with its measured values.
pub static SPEC2006: [SpecBenchmark; 15] = [
    bench!(
        "perlbench",
        23_857_981,
        11_194_845_654,
        5.93,
        106.43,
        180.71,
        7624.85,
        243.42,
        Mixed
    ),
    bench!(
        "bzip2",
        11_425_324,
        8_311_245_775,
        5.41,
        59.13,
        86.88,
        6939.13,
        180.91,
        Blocked
    ),
    bench!(
        "gcc",
        4_530_518,
        1_328_074_710,
        1.34,
        25.99,
        30.53,
        475.50,
        67.25,
        Mixed
    ),
    bench!(
        "mcf",
        55_675_001,
        9_552_209_709,
        19.49,
        85.09,
        153.69,
        5898.61,
        268.29,
        PointerChasing
    ),
    bench!(
        "milc",
        12_081_037,
        13_232_307_302,
        17.11,
        105.44,
        185.09,
        9746.86,
        365.60,
        Streaming
    ),
    bench!(
        "namd",
        7_204_133,
        22_067_031_445,
        15.87,
        152.11,
        282.85,
        7936.16,
        431.55,
        Blocked
    ),
    bench!(
        "gobmk",
        3_758_950,
        7_149_796_931,
        6.83,
        80.65,
        108.50,
        2798.21,
        186.21,
        Mixed
    ),
    bench!(
        "dealII",
        31_386_407,
        66_801_413_934,
        39.59,
        522.24,
        674.06,
        20542.37,
        1250.43,
        Blocked
    ),
    bench!(
        "soplex",
        18_858_173,
        3_432_521_697,
        3.87,
        32.25,
        52.24,
        187.19,
        102.59,
        Mixed
    ),
    bench!(
        "povray",
        616_821,
        15_871_518_510,
        12.69,
        133.96,
        238.53,
        7503.35,
        307.91,
        SmallFootprint
    ),
    bench!(
        "calculix",
        10_366_947,
        2_511_568_698,
        2.18,
        24.45,
        42.18,
        1771.96,
        78.74,
        Blocked
    ),
    bench!(
        "libquantum",
        570_074,
        1_700_539_806,
        2.43,
        13.56,
        26.93,
        715.78,
        58.81,
        SmallFootprint
    ),
    bench!(
        "lbm",
        53_628_988,
        48_739_982_166,
        43.47,
        339.75,
        674.09,
        26858.27,
        1211.35,
        Streaming
    ),
    bench!(
        "astar",
        48_641_983,
        54_587_054_078,
        59.29,
        468.92,
        776.14,
        23275.32,
        1107.70,
        PointerChasing
    ),
    bench!(
        "sphinx3",
        8_625_694,
        12_284_649_018,
        12.24,
        91.44,
        174.105,
        15331.22,
        290.51,
        Mixed
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressStream;

    #[test]
    fn table4_row_count_and_names() {
        assert_eq!(SPEC2006.len(), 15);
        assert_eq!(SPEC2006[0].name, "perlbench");
        assert_eq!(SPEC2006[14].name, "sphinx3");
        assert!(SpecBenchmark::by_name("mcf").is_some());
        assert!(SpecBenchmark::by_name("nginx").is_none());
    }

    #[test]
    fn paper_slowdowns_are_in_reported_band() {
        // The abstract reports Parda slowdowns of ~13–53x; Olken81 runs to
        // hundreds–thousands.
        for b in &SPEC2006 {
            let parda = b.parda_slowdown();
            assert!(
                (5.0..60.0).contains(&parda),
                "{}: parda slowdown {parda}",
                b.name
            );
            let olken = b.olken_slowdown();
            assert!(
                (40.0..1500.0).contains(&olken),
                "{}: olken slowdown {olken}",
                b.name
            );
            assert!(olken > parda, "{}: parallel must beat sequential", b.name);
        }
    }

    #[test]
    fn scaling_preserves_mn_ratio() {
        let mcf = SpecBenchmark::by_name("mcf").unwrap();
        let scaled = mcf.scaled(1_000_000);
        let paper_ratio = mcf.m_paper as f64 / mcf.n_paper as f64;
        let scaled_ratio = scaled.m as f64 / scaled.n as f64;
        assert!(
            (paper_ratio - scaled_ratio).abs() / paper_ratio < 0.01,
            "ratio drift: paper {paper_ratio}, scaled {scaled_ratio}"
        );
    }

    #[test]
    fn scaled_footprint_is_clamped() {
        let povray = SpecBenchmark::by_name("povray").unwrap();
        // povray's M/N ≈ 3.9e-5: at tiny n_target the clamp to ≥ 2 applies.
        assert_eq!(povray.scaled(100).m, 2);
        let lbm = SpecBenchmark::by_name("lbm").unwrap();
        let s = lbm.scaled(10);
        assert!(s.m <= s.n);
    }

    #[test]
    fn generators_hit_scaled_footprints() {
        for name in ["mcf", "libquantum", "milc"] {
            let b = SpecBenchmark::by_name(name).unwrap();
            let scaled = b.scaled(50_000);
            let t = b.generator(50_000, 11).take_trace(50_000);
            assert_eq!(t.len() as u64, scaled.n, "{name}");
            assert_eq!(t.distinct() as u64, scaled.m, "{name}");
        }
    }

    #[test]
    fn locality_classes_differ_measurably() {
        // Streaming workloads put their reuse mass near the footprint, so
        // few re-references land in the top quarter of the LRU stack; a
        // small-footprint profile keeps most reuse near the top. Compare the
        // fraction of re-references at stack position < M/4.
        fn short_hit_fraction(name: &str) -> f64 {
            let b = SpecBenchmark::by_name(name).unwrap();
            let scaled = b.scaled(30_000);
            let window = (scaled.m / 4).max(1) as usize;
            let t = b.generator(30_000, 5).take_trace(30_000);
            let mut stack: Vec<u64> = Vec::new();
            let mut short = 0u64;
            let mut finite = 0u64;
            for &a in t.as_slice() {
                if let Some(pos) = stack.iter().position(|&x| x == a) {
                    finite += 1;
                    if pos < window {
                        short += 1;
                    }
                    stack.remove(pos);
                }
                stack.insert(0, a);
            }
            short as f64 / finite as f64
        }
        let streaming = short_hit_fraction("milc");
        let small = short_hit_fraction("povray");
        assert!(
            small > streaming + 0.2,
            "povray {small} should dwarf milc {streaming}"
        );
    }
}

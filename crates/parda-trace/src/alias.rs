//! Walker alias method: O(1) sampling from arbitrary discrete distributions.
//!
//! Used for Zipf address popularity ([`crate::gen::ZipfGen`]) and for the
//! empirical distance mixtures of the SPEC workload models, where millions
//! of samples per trace make inverse-CDF binary search (O(log n)) or naive
//! scans (O(n)) measurable.

use rand::Rng;

/// Pre-processed discrete distribution supporting O(1) sampling.
///
/// # Examples
///
/// ```
/// use parda_trace::alias::AliasTable;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let table = AliasTable::new(&[0.5, 0.25, 0.25]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let sample = table.sample(&mut rng);
/// assert!(sample < 3);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance threshold per bucket, scaled to u64 for branch-cheap
    /// comparison.
    prob: Vec<u64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build a table from non-negative weights (not necessarily normalized).
    ///
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to u32::MAX entries"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w >= 0.0 && w.is_finite(),
                    "weight must be finite and ≥ 0, got {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        // Scaled probabilities: mean 1.0.
        let scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut residual = scaled.clone();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![0u64; n];
        let mut alias = vec![0u32; n];
        let to_u64 = |p: f64| (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = to_u64(residual[s as usize]);
            alias[s as usize] = l;
            residual[l as usize] -= 1.0 - residual[s as usize];
            if residual[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically ~1.0: accept unconditionally.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = u64::MAX;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let bucket = rng.gen_range(0..self.prob.len());
        if rng.gen::<u64>() <= self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

/// Zipf(θ) weights over ranks `1..=n`: weight(k) = 1 / k^θ.
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0);
    assert!(theta >= 0.0 && theta.is_finite());
    (1..=n).map(|k| (k as f64).powf(-theta)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, samples: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..samples {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 8]);
        let freqs = empirical(&table, 80_000, 7);
        for (i, f) in freqs.iter().enumerate() {
            assert!((f - 0.125).abs() < 0.01, "bucket {i}: {f}");
        }
    }

    #[test]
    fn skewed_weights_match_frequencies() {
        let table = AliasTable::new(&[8.0, 4.0, 2.0, 1.0, 1.0]);
        let freqs = empirical(&table, 160_000, 11);
        let expect = [0.5, 0.25, 0.125, 0.0625, 0.0625];
        for (i, (&f, &e)) in freqs.iter().zip(expect.iter()).enumerate() {
            assert!((f - e).abs() < 0.01, "bucket {i}: got {f}, want {e}");
        }
    }

    #[test]
    fn zero_weight_bucket_is_never_drawn() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]);
        let freqs = empirical(&table, 50_000, 3);
        assert_eq!(freqs[1], 0.0, "zero-weight outcome drawn");
    }

    #[test]
    fn single_outcome_always_drawn() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_weights_shape() {
        let w = zipf_weights(4, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[3] - 0.25).abs() < 1e-12);
        // theta = 0 degenerates to uniform.
        assert_eq!(zipf_weights(3, 0.0), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }
}

//! Corruption recovery for trace files: degradation policies, the lossy
//! frame decoder, the post-footer resync scan, and CRC verification.
//!
//! The streaming pipeline is pitched at traces fed from real systems, and
//! real telemetry is dirty: bit flips in transit, truncated uploads, torn
//! writes. The strict decoders in [`crate::io`] fail the whole file on the
//! first bad byte; this module trades completeness for availability under
//! an explicit [`Degradation`] policy:
//!
//! * [`Degradation::Strict`] — any integrity violation is an error
//!   (the default; identical behaviour to [`crate::io::decode_trace`]);
//! * [`Degradation::Repair`] — the header and footer index must be intact,
//!   but corrupt *frames* (CRC mismatch, undecodable payload) are
//!   quarantined and skipped, and the surviving frames are returned;
//! * [`Degradation::BestEffort`] — additionally survives a destroyed
//!   footer by scanning the byte stream for plausible frame headers
//!   (CRC-confirmed on v2.1 files) and never fails once a readable file
//!   header was found.
//!
//! Every skipped frame, dropped reference, CRC failure, and resync is
//! tallied in a [`RecoveryMetrics`] so callers can report exactly what was
//! lost — a partial histogram with an honest corruption report instead of
//! no histogram at all.

use crate::io::{
    check_frame_shape, decode_frame_into, invalid, parse_footer, parse_header, parse_tag_block,
    read_trace, split_addr_payload, Encoding, TraceHeader, HEADER_LEN, VERSION_V2,
};
use crate::{Addr, ThreadedTrace, Tid, Trace};
use parda_obs::RecoveryMetrics;
use std::io::{self, Read};
use std::path::Path;
use std::str::FromStr;

/// How much integrity loss an analysis is willing to absorb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Degradation {
    /// Fail on the first integrity violation (default).
    #[default]
    Strict,
    /// Skip corrupt frames; header and footer index must be intact.
    Repair,
    /// Skip corrupt frames and resync around a destroyed footer; never
    /// fail once the file header has been read.
    BestEffort,
}

impl Degradation {
    /// `true` when corrupt frames may be dropped rather than failing.
    pub fn is_lossy(self) -> bool {
        !matches!(self, Degradation::Strict)
    }
}

impl FromStr for Degradation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(Degradation::Strict),
            "repair" => Ok(Degradation::Repair),
            "best-effort" | "besteffort" => Ok(Degradation::BestEffort),
            other => Err(format!(
                "unknown degradation policy {other:?} (expected strict, repair, or best-effort)"
            )),
        }
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Degradation::Strict => "strict",
            Degradation::Repair => "repair",
            Degradation::BestEffort => "best-effort",
        })
    }
}

/// Decode an in-memory trace image under a degradation policy.
///
/// Under [`Degradation::Strict`] this is exactly [`crate::io::decode_trace`]
/// (including the parallel v2 frame path) plus an all-clean metrics record.
/// Under the lossy policies, corrupt frames are skipped and tallied; the
/// returned trace is the in-order concatenation of the surviving frames.
pub fn decode_trace_recovering(
    bytes: &[u8],
    policy: Degradation,
) -> io::Result<(Trace, RecoveryMetrics)> {
    let header = parse_header(bytes)?;
    let mut metrics = RecoveryMetrics::default();

    if header.version != VERSION_V2 {
        // v1 has no frame structure to recover around: decode whole, and
        // under BestEffort salvage the longest decodable prefix.
        match read_trace(bytes) {
            Ok(t) => return Ok((t, metrics)),
            Err(_) if policy == Degradation::BestEffort => {
                let t = salvage_v1_prefix(bytes, &header);
                metrics.refs_dropped = header.count.saturating_sub(t.len() as u64);
                metrics.resyncs = 1;
                return Ok((t, metrics));
            }
            Err(e) => return Err(e),
        }
    }

    match parse_footer(bytes, &header) {
        Ok(entries) => {
            metrics.frames_total = entries.len() as u64;
            if policy == Degradation::Strict {
                return crate::io::decode_trace(bytes).map(|t| (t, metrics));
            }
            let out = lossy_walk(bytes, &header, &entries, &mut metrics, None);
            Ok((Trace::from_vec(out), metrics))
        }
        Err(_) if policy == Degradation::BestEffort => {
            metrics.resyncs = 1;
            let out = resync_scan(bytes, &header, &mut metrics, None);
            metrics.refs_dropped = header.count.saturating_sub(out.len() as u64);
            Ok((Trace::from_vec(out), metrics))
        }
        Err(e) => Err(e),
    }
}

/// Decode an in-memory v2.2 thread-tagged image under a degradation
/// policy, recovering addresses and thread IDs together. Frames whose tag
/// block or address block fail to decode are skipped as a unit, so the two
/// streams can never fall out of step.
pub fn decode_tagged_trace_recovering(
    bytes: &[u8],
    policy: Degradation,
) -> io::Result<(ThreadedTrace, RecoveryMetrics)> {
    let header = parse_header(bytes)?;
    if !header.tagged() {
        return Err(invalid(
            "trace is not thread-tagged (write it with a v2.2 tagged writer)",
        ));
    }
    let mut metrics = RecoveryMetrics::default();
    match parse_footer(bytes, &header) {
        Ok(entries) => {
            metrics.frames_total = entries.len() as u64;
            if policy == Degradation::Strict {
                return crate::io::decode_tagged_trace(bytes).map(|t| (t, metrics));
            }
            let mut tids: Vec<Tid> = Vec::new();
            let out = lossy_walk(bytes, &header, &entries, &mut metrics, Some(&mut tids));
            Ok((ThreadedTrace::from_parts(out, tids), metrics))
        }
        Err(_) if policy == Degradation::BestEffort => {
            metrics.resyncs = 1;
            let mut tids: Vec<Tid> = Vec::new();
            let out = resync_scan(bytes, &header, &mut metrics, Some(&mut tids));
            metrics.refs_dropped = header.count.saturating_sub(out.len() as u64);
            Ok((ThreadedTrace::from_parts(out, tids), metrics))
        }
        Err(e) => Err(e),
    }
}

/// Walk an intact footer index, decoding every frame that passes its
/// integrity checks and skipping (with a metrics tally) the ones that
/// don't. When `tids` is given the file's tag blocks are decoded alongside
/// the addresses; otherwise they are skipped structurally.
fn lossy_walk(
    bytes: &[u8],
    header: &TraceHeader,
    entries: &[crate::io::FrameIndexEntry],
    metrics: &mut RecoveryMetrics,
    mut tids: Option<&mut Vec<Tid>>,
) -> Vec<Addr> {
    let mut out: Vec<Addr> = Vec::new();
    let mut frame_tids: Vec<Tid> = Vec::new();
    let fh_len = header.frame_header_len() as usize;
    for (i, e) in entries.iter().enumerate() {
        let at = e.offset as usize;
        let fh = &bytes[at..at + fh_len];
        let payload = &bytes[at + fh_len..at + fh_len + e.len as usize];
        let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
        if fcount != e.count || flen != e.len {
            metrics.skip_frame(i as u64, u64::from(e.count));
            continue;
        }
        if header.checksummed() {
            let stored = u32::from_le_bytes(fh[8..12].try_into().unwrap());
            if parda_hash::crc32c(payload) != stored {
                metrics.crc_failures += 1;
                metrics.skip_frame(i as u64, u64::from(e.count));
                continue;
            }
        }
        let addr_payload = if tids.is_some() {
            match parse_tag_block(payload, e.count as usize, &mut frame_tids) {
                Ok(off) => &payload[off..],
                Err(_) => {
                    metrics.skip_frame(i as u64, u64::from(e.count));
                    continue;
                }
            }
        } else {
            match split_addr_payload(payload, header.tagged(), e.count as usize) {
                Ok(p) => p,
                Err(_) => {
                    metrics.skip_frame(i as u64, u64::from(e.count));
                    continue;
                }
            }
        };
        let start = out.len();
        out.resize(start + e.count as usize, 0);
        if decode_frame_into(addr_payload, header.encoding, &mut out[start..]).is_err() {
            out.truncate(start);
            metrics.skip_frame(i as u64, u64::from(e.count));
        } else if let Some(ts) = tids.as_deref_mut() {
            ts.extend_from_slice(&frame_tids);
        }
    }
    out
}

/// Load a trace from a path under a degradation policy.
pub fn load_trace_recovering<P: AsRef<Path>>(
    path: P,
    policy: Degradation,
) -> io::Result<(Trace, RecoveryMetrics)> {
    decode_trace_recovering(&std::fs::read(path)?, policy)
}

/// Longest decodable v1 prefix: raw traces keep every complete word, delta
/// traces keep everything up to the first broken varint.
fn salvage_v1_prefix(bytes: &[u8], header: &TraceHeader) -> Trace {
    let body = &bytes[HEADER_LEN as usize..];
    let count = header.count as usize;
    let mut out: Vec<Addr> = Vec::new();
    match header.encoding {
        Encoding::Raw => {
            for chunk in body.chunks_exact(8).take(count) {
                out.push(u64::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        Encoding::DeltaVarint => {
            let mut r = body;
            let mut prev: Addr = 0;
            while out.len() < count {
                let Ok(v) = read_varint_prefix(&mut r) else {
                    break;
                };
                prev = prev.wrapping_add(zigzag_decode(v) as u64);
                out.push(prev);
            }
        }
    }
    Trace::from_vec(out)
}

// Local copies of the varint/zig-zag decode helpers: the `io` versions are
// deliberately not exported, and the salvage path accepts a *prefix* where
// the strict reader demands the whole payload.
fn read_varint_prefix<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(invalid("varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("varint longer than 10 bytes"));
        }
    }
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Scan a v2 byte stream for decodable frames after the footer index was
/// lost. At each candidate offset the inline header is shape-checked, the
/// payload CRC-verified (v2.1) and decoded; a hit emits the frame and jumps
/// past it, a miss advances one byte. Gaps between hits are counted as
/// resyncs. On checksummed files a false positive needs a 1-in-2^32 CRC
/// collision *and* a plausible header, so quarantined bytes (including the
/// dead footer) are skipped reliably.
fn resync_scan(
    bytes: &[u8],
    header: &TraceHeader,
    metrics: &mut RecoveryMetrics,
    mut tids: Option<&mut Vec<Tid>>,
) -> Vec<Addr> {
    let fh_len = header.frame_header_len() as usize;
    let mut out: Vec<Addr> = Vec::new();
    let mut frame_tids: Vec<Tid> = Vec::new();
    let mut at = HEADER_LEN as usize;
    let mut aligned = true;
    let mut frame_idx = 0u64;
    while at + fh_len <= bytes.len() {
        let fh = &bytes[at..at + fh_len];
        let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
        let plausible = check_frame_shape(fcount, flen, header.encoding, header.tagged()).is_ok()
            && u64::from(fcount) <= header.count
            && at + fh_len + flen as usize <= bytes.len();
        if plausible {
            let payload = &bytes[at + fh_len..at + fh_len + flen as usize];
            let crc_ok = !header.checksummed()
                || u32::from_le_bytes(fh[8..12].try_into().unwrap()) == parda_hash::crc32c(payload);
            let addr_payload = if !crc_ok {
                None
            } else if tids.is_some() {
                parse_tag_block(payload, fcount as usize, &mut frame_tids)
                    .ok()
                    .map(|off| &payload[off..])
            } else {
                split_addr_payload(payload, header.tagged(), fcount as usize).ok()
            };
            if let Some(addr_payload) = addr_payload {
                let start = out.len();
                out.resize(start + fcount as usize, 0);
                if decode_frame_into(addr_payload, header.encoding, &mut out[start..]).is_ok() {
                    if let Some(ts) = tids.as_deref_mut() {
                        ts.extend_from_slice(&frame_tids);
                    }
                    if !aligned {
                        metrics.resyncs += 1;
                        aligned = true;
                    }
                    frame_idx += 1;
                    at += fh_len + flen as usize;
                    continue;
                }
                out.truncate(start);
            }
        }
        if aligned {
            metrics.skip_frame(frame_idx, 0);
            frame_idx += 1;
            aligned = false;
        }
        at += 1;
    }
    out
}

/// Result of a full-file integrity check ([`verify_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Major format version.
    pub version: u32,
    /// Minor format version (1 = CRC-checksummed frames, 2 = thread-tagged).
    pub minor: u32,
    /// Frames verified (0 for v1: the format has no frames).
    pub frames: u64,
    /// References covered by the verified frames.
    pub refs: u64,
    /// `true` when verification used stored CRC32C checksums; `false` when
    /// the file predates checksums and a full decode validation ran
    /// instead.
    pub checksummed: bool,
    /// `true` when frames carry thread-ID tag blocks (v2.2).
    pub tagged: bool,
}

/// Verify the integrity of every frame in a trace file without running any
/// analysis. v2.1 files are checked against their stored CRCs (footer index
/// first, then every frame payload); older files fall back to a full decode
/// validation. The first violation is returned as `InvalidData` naming the
/// offending frame.
pub fn verify_trace<P: AsRef<Path>>(path: P) -> io::Result<VerifyReport> {
    let bytes = std::fs::read(path)?;
    let header = parse_header(&bytes)?;
    if header.version != VERSION_V2 {
        let t = read_trace(bytes.as_slice())?;
        return Ok(VerifyReport {
            version: header.version,
            minor: header.minor,
            frames: 0,
            refs: t.len() as u64,
            checksummed: false,
            tagged: false,
        });
    }
    let entries = parse_footer(&bytes, &header)?;
    if !header.checksummed() {
        let t = crate::io::decode_trace(&bytes)?;
        return Ok(VerifyReport {
            version: header.version,
            minor: header.minor,
            frames: entries.len() as u64,
            refs: t.len() as u64,
            checksummed: false,
            tagged: false,
        });
    }
    let fh_len = header.frame_header_len() as usize;
    for (i, e) in entries.iter().enumerate() {
        let at = e.offset as usize;
        let fh = &bytes[at..at + fh_len];
        let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
        if fcount != e.count || flen != e.len {
            return Err(invalid(format!("frame {i} header disagrees with index")));
        }
        let stored = u32::from_le_bytes(fh[8..12].try_into().unwrap());
        let payload = &bytes[at + fh_len..at + fh_len + e.len as usize];
        if parda_hash::crc32c(payload) != stored {
            return Err(invalid(format!("frame {i} CRC mismatch")));
        }
    }
    Ok(VerifyReport {
        version: header.version,
        minor: header.minor,
        frames: entries.len() as u64,
        refs: header.count,
        checksummed: true,
        tagged: header.tagged(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{
        write_trace_v2_framed, write_trace_v2_framed_opts, Encoding, FRAME_HEADER_LEN_V21,
    };

    fn sample(n: u64) -> Trace {
        (0..n).map(|i| i.wrapping_mul(0x9E37_79B9) >> 13).collect()
    }

    /// Byte offset of frame `i`'s payload in a freshly written v2.1 file.
    fn frame_payload_offset(bytes: &[u8], frame: usize) -> usize {
        let header = parse_header(bytes).unwrap();
        let entries = parse_footer(bytes, &header).unwrap();
        entries[frame].offset as usize + FRAME_HEADER_LEN_V21 as usize
    }

    #[test]
    fn degradation_parses_and_displays() {
        for (s, d) in [
            ("strict", Degradation::Strict),
            ("repair", Degradation::Repair),
            ("best-effort", Degradation::BestEffort),
        ] {
            assert_eq!(s.parse::<Degradation>().unwrap(), d);
            assert_eq!(d.to_string(), s);
        }
        assert!("lenient".parse::<Degradation>().is_err());
        assert!(!Degradation::Strict.is_lossy());
        assert!(Degradation::BestEffort.is_lossy());
    }

    #[test]
    fn clean_file_recovers_identically_under_every_policy() {
        let t = sample(1000);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        for policy in [
            Degradation::Strict,
            Degradation::Repair,
            Degradation::BestEffort,
        ] {
            let (got, m) = decode_trace_recovering(&buf, policy).unwrap();
            assert_eq!(got, t, "{policy}");
            assert!(m.is_clean(), "{policy}: {m:?}");
        }
    }

    #[test]
    fn corrupt_frame_is_skipped_under_lossy_policies() {
        let t = sample(640);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        let poke = frame_payload_offset(&buf, 3) + 10;
        buf[poke] ^= 0xFF;

        assert!(decode_trace_recovering(&buf, Degradation::Strict).is_err());

        for policy in [Degradation::Repair, Degradation::BestEffort] {
            let (got, m) = decode_trace_recovering(&buf, policy).unwrap();
            // Exactly frame 3 (refs 192..256) is gone.
            let mut expect: Vec<u64> = t.as_slice()[..192].to_vec();
            expect.extend_from_slice(&t.as_slice()[256..]);
            assert_eq!(got.as_slice(), expect.as_slice(), "{policy}");
            assert_eq!(m.frames_skipped, 1);
            assert_eq!(m.refs_dropped, 64);
            assert_eq!(m.crc_failures, 1);
            assert_eq!(m.skipped_frames, vec![3]);
            assert_eq!(m.frames_total, 10);
        }
    }

    #[test]
    fn destroyed_footer_resyncs_under_best_effort_only() {
        let t = sample(640);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        let n = buf.len();
        buf[n - 8..].copy_from_slice(b"XXXXXXXX"); // kill the index magic

        assert!(decode_trace_recovering(&buf, Degradation::Strict).is_err());
        assert!(decode_trace_recovering(&buf, Degradation::Repair).is_err());

        let (got, m) = decode_trace_recovering(&buf, Degradation::BestEffort).unwrap();
        assert_eq!(got, t, "resync must recover every frame");
        assert!(m.resyncs >= 1);
    }

    #[test]
    fn resync_skips_a_corrupt_frame_and_realigns() {
        let t = sample(640);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        let poke = frame_payload_offset(&buf, 2) + 5;
        buf[poke] ^= 0x55;
        let n = buf.len();
        buf[n - 1] = b'!';

        let (got, m) = decode_trace_recovering(&buf, Degradation::BestEffort).unwrap();
        let mut expect: Vec<u64> = t.as_slice()[..128].to_vec();
        expect.extend_from_slice(&t.as_slice()[192..]);
        assert_eq!(got.as_slice(), expect.as_slice());
        assert!(m.resyncs >= 1);
        assert_eq!(m.refs_dropped, 64);
    }

    #[test]
    fn truncated_file_yields_prefix_under_best_effort() {
        let t = sample(640);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 64).unwrap();
        buf.truncate(buf.len() / 2);
        let (got, m) = decode_trace_recovering(&buf, Degradation::BestEffort).unwrap();
        assert!(!got.is_empty(), "some whole frames fit in half the file");
        assert_eq!(got.as_slice(), &t.as_slice()[..got.len()]);
        assert!(m.refs_dropped > 0);
    }

    #[test]
    fn v1_best_effort_salvages_prefix() {
        let t = sample(100);
        let mut buf = Vec::new();
        crate::io::write_trace(&mut buf, &t, Encoding::Raw).unwrap();
        buf.truncate(buf.len() - 12); // lose the last ref and a half
        assert!(decode_trace_recovering(&buf, Degradation::Strict).is_err());
        let (got, m) = decode_trace_recovering(&buf, Degradation::BestEffort).unwrap();
        assert_eq!(got.len(), 98);
        assert_eq!(got.as_slice(), &t.as_slice()[..98]);
        assert_eq!(m.refs_dropped, 2);
    }

    #[test]
    fn verify_passes_clean_and_names_bad_frame() {
        let dir = std::env::temp_dir().join("parda-trace-verify-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.trc");
        let t = sample(640);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let report = verify_trace(&path).unwrap();
        assert_eq!(report.frames, 10);
        assert_eq!(report.refs, 640);
        assert!(report.checksummed);
        assert_eq!((report.version, report.minor), (2, 1));

        let poke = frame_payload_offset(&buf, 7) + 3;
        buf[poke] ^= 0x01;
        std::fs::write(&path, &buf).unwrap();
        let err = verify_trace(&path).unwrap_err();
        assert!(err.to_string().contains("frame 7"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_falls_back_to_decode_for_v20_files() {
        let dir = std::env::temp_dir().join("parda-trace-verify-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v20.trc");
        let t = sample(200);
        let mut buf = Vec::new();
        write_trace_v2_framed_opts(&mut buf, &t, Encoding::DeltaVarint, 64, false).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let report = verify_trace(&path).unwrap();
        assert!(!report.checksummed);
        assert_eq!((report.version, report.minor), (2, 0));
        assert_eq!(report.refs, 200);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v20_files_recover_without_crc_counters() {
        let t = sample(320);
        let mut buf = Vec::new();
        write_trace_v2_framed_opts(&mut buf, &t, Encoding::DeltaVarint, 64, false).unwrap();
        let (clean, m) = decode_trace_recovering(&buf, Degradation::Repair).unwrap();
        assert_eq!(clean, t);
        assert!(m.is_clean());
        // A flipped payload byte still dies in decode validation (no CRC),
        // so the frame is skipped with crc_failures staying zero.
        let header = parse_header(&buf).unwrap();
        let entries = parse_footer(&buf, &header).unwrap();
        // A dangling continuation bit on the frame's final varint byte is
        // guaranteed undecodable regardless of the surrounding data.
        let poke = entries[1].offset as usize + 8 + entries[1].len as usize - 1;
        buf[poke] = 0x80;
        let (got, m) = decode_trace_recovering(&buf, Degradation::Repair).unwrap();
        assert!(got.len() < t.len());
        assert_eq!(m.crc_failures, 0);
        assert!(m.frames_skipped >= 1);
    }

    fn tagged_sample(n: u64, threads: u32) -> ThreadedTrace {
        ThreadedTrace::from_parts(
            (0..n).map(|i| i.wrapping_mul(0x9E37_79B9) >> 13).collect(),
            (0..n).map(|i| (i % u64::from(threads)) as Tid).collect(),
        )
    }

    #[test]
    fn tagged_corrupt_frame_skips_addrs_and_tids_together() {
        let t = tagged_sample(640, 4);
        let mut buf = Vec::new();
        crate::io::write_tagged_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        let poke = frame_payload_offset(&buf, 3) + 10;
        buf[poke] ^= 0xFF;

        assert!(decode_tagged_trace_recovering(&buf, Degradation::Strict).is_err());
        let (got, m) = decode_tagged_trace_recovering(&buf, Degradation::Repair).unwrap();
        // Exactly frame 3 (refs 192..256) is gone, from both streams.
        let mut want_addrs: Vec<u64> = t.addrs()[..192].to_vec();
        want_addrs.extend_from_slice(&t.addrs()[256..]);
        let mut want_tids: Vec<Tid> = t.tids()[..192].to_vec();
        want_tids.extend_from_slice(&t.tids()[256..]);
        assert_eq!(got.addrs(), want_addrs.as_slice());
        assert_eq!(got.tids(), want_tids.as_slice());
        assert_eq!(m.frames_skipped, 1);
        assert_eq!(m.refs_dropped, 64);
    }

    #[test]
    fn tagged_destroyed_footer_resyncs_with_tids() {
        let t = tagged_sample(640, 3);
        let mut buf = Vec::new();
        crate::io::write_tagged_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 64).unwrap();
        let n = buf.len();
        buf[n - 8..].copy_from_slice(b"XXXXXXXX");

        let (got, m) = decode_tagged_trace_recovering(&buf, Degradation::BestEffort).unwrap();
        assert_eq!(got, t, "resync must recover every tagged frame");
        assert!(m.resyncs >= 1);
    }

    #[test]
    fn tagged_recovery_rejects_untagged_files() {
        let t = sample(100);
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 32).unwrap();
        assert!(decode_tagged_trace_recovering(&buf, Degradation::BestEffort).is_err());
    }

    #[test]
    fn verify_reports_tagged_flag() {
        let dir = std::env::temp_dir().join("parda-trace-verify-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tagged.trc");
        let t = tagged_sample(200, 2);
        crate::io::save_tagged_trace_v2(&path, &t, Encoding::DeltaVarint).unwrap();
        let report = verify_trace(&path).unwrap();
        assert!(report.tagged);
        assert!(report.checksummed);
        assert_eq!((report.version, report.minor), (2, 2));
        assert_eq!(report.refs, 200);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Binary trace file format.
//!
//! The paper streams traces through a pipe rather than storing them ("traces
//! stored for offline analysis can easily contain 100 billion references"),
//! but a file format is still needed for reproducible experiments and the
//! CLI. Layout:
//!
//! ```text
//! magic   8 bytes  "PARDATRC"
//! version u32 LE   currently 1
//! encoding u32 LE  0 = raw u64 LE addresses, 1 = zig-zag delta varint
//! count   u64 LE   number of references
//! payload ...
//! ```
//!
//! The varint-delta encoding exploits spatial locality: consecutive
//! addresses in real traces are near each other, so deltas are small and
//! most references cost 1–2 bytes instead of 8.

use crate::{Addr, Trace};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PARDATRC";
const VERSION: u32 = 1;

/// Payload encoding selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Fixed-width little-endian u64 per address.
    Raw,
    /// Zig-zag delta + LEB128 varint per address.
    DeltaVarint,
}

impl Encoding {
    fn to_u32(self) -> u32 {
        match self {
            Encoding::Raw => 0,
            Encoding::DeltaVarint => 1,
        }
    }

    fn from_u32(v: u32) -> io::Result<Self> {
        match v {
            0 => Ok(Encoding::Raw),
            1 => Ok(Encoding::DeltaVarint),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown trace encoding {other}"),
            )),
        }
    }
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize a trace to a writer.
pub fn write_trace<W: Write>(w: W, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&encoding.to_u32().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    match encoding {
        Encoding::Raw => {
            for &a in trace.as_slice() {
                w.write_all(&a.to_le_bytes())?;
            }
        }
        Encoding::DeltaVarint => {
            let mut prev: Addr = 0;
            for &a in trace.as_slice() {
                let delta = a.wrapping_sub(prev) as i64;
                write_varint(&mut w, zigzag_encode(delta))?;
                prev = a;
            }
        }
    }
    w.flush()
}

/// Deserialize a trace from a reader.
pub fn read_trace<R: Read>(r: R) -> io::Result<Trace> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    r.read_exact(&mut word)?;
    let encoding = Encoding::from_u32(u32::from_le_bytes(word))?;
    let mut qword = [0u8; 8];
    r.read_exact(&mut qword)?;
    let count = u64::from_le_bytes(qword) as usize;

    let mut addrs = Vec::with_capacity(count);
    match encoding {
        Encoding::Raw => {
            for _ in 0..count {
                r.read_exact(&mut qword)?;
                addrs.push(u64::from_le_bytes(qword));
            }
        }
        Encoding::DeltaVarint => {
            let mut prev: Addr = 0;
            for _ in 0..count {
                let delta = zigzag_decode(read_varint(&mut r)?);
                prev = prev.wrapping_add(delta as u64);
                addrs.push(prev);
            }
        }
    }
    Ok(Trace::from_vec(addrs))
}

/// Write a trace to a file path.
pub fn save_trace<P: AsRef<Path>>(path: P, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    write_trace(std::fs::File::create(path)?, trace, encoding)
}

/// Read a trace from a file path.
pub fn load_trace<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
    read_trace(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(trace: &Trace, encoding: Encoding) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace, encoding).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn raw_round_trip() {
        let t = Trace::from_vec(vec![0, u64::MAX, 42, 42, 7]);
        assert_eq!(round_trip(&t, Encoding::Raw), t);
    }

    #[test]
    fn delta_round_trip_with_wraparound() {
        let t = Trace::from_vec(vec![u64::MAX, 0, 1 << 63, 3]);
        assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        assert_eq!(round_trip(&t, Encoding::Raw), t);
        assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
    }

    #[test]
    fn delta_is_smaller_for_local_traces() {
        let t: Trace = (0..10_000u64).map(|i| 0x1000_0000 + i * 8).collect();
        let mut raw = Vec::new();
        let mut delta = Vec::new();
        write_trace(&mut raw, &t, Encoding::Raw).unwrap();
        write_trace(&mut delta, &t, Encoding::DeltaVarint).unwrap();
        assert!(
            delta.len() * 4 < raw.len(),
            "delta {} vs raw {}",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::from_vec(vec![1]), Encoding::Raw).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_trace(bad_magic.as_slice()).is_err());
        let mut bad_version = buf.clone();
        bad_version[8] = 99;
        assert!(read_trace(bad_version.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::from_vec(vec![1, 2, 3]), Encoding::Raw).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn zigzag_is_involutive_on_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn save_and_load_via_path() {
        let dir = std::env::temp_dir().join("parda-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        let t: Trace = (0..100u64).map(|i| i * 3).collect();
        save_trace(&path, &t, Encoding::DeltaVarint).unwrap();
        assert_eq!(load_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        #[test]
        fn any_trace_round_trips_both_encodings(addrs in proptest::collection::vec(any::<u64>(), 0..300)) {
            let t = Trace::from_vec(addrs);
            prop_assert_eq!(round_trip(&t, Encoding::Raw), t.clone());
            prop_assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
        }
    }
}

//! Binary trace file formats.
//!
//! The paper streams traces through a pipe rather than storing them ("traces
//! stored for offline analysis can easily contain 100 billion references"),
//! but a file format is still needed for reproducible experiments and the
//! CLI. Both versions share a 24-byte header:
//!
//! ```text
//! magic   8 bytes  "PARDATRC"
//! version u32 LE   1 or 2
//! encoding u32 LE  0 = raw u64 LE addresses, 1 = zig-zag delta varint
//! count   u64 LE   number of references
//! ```
//!
//! **Version 1** follows the header with one flat payload: either `count`
//! little-endian u64 words, or a single delta-varint stream. The
//! varint-delta encoding exploits spatial locality: consecutive addresses in
//! real traces are near each other, so deltas are small and most references
//! cost 1–2 bytes instead of 8.
//!
//! **Version 2** splits the payload into independently decodable *frames* of
//! [`FRAME_REFS`] references. Each frame starts with an inline header
//! (`count` u32 LE, `payload_len` u32 LE) and, for the delta encoding,
//! resets the delta baseline to zero — so any frame can be decoded knowing
//! only its bytes. A seekable index closes the file:
//!
//! ```text
//! frames  count u32 | payload_len u32 | payload ...   (repeated)
//! index   offset u64 | count u32 | len u32            (one entry per frame)
//! nframes u64 LE
//! magic   8 bytes  "PARDAIDX"
//! ```
//!
//! The footer is found by reading the last 16 bytes, which makes two fast
//! paths possible: [`decode_trace`] decodes all frames of an in-memory v2
//! image in parallel, and [`crate::stream::FramedStream`] decodes frames on
//! background threads while an analyzer consumes earlier ones.
//!
//! **Version 2.1** (the default written by [`write_trace_v2`]) adds
//! end-to-end integrity. The version word carries a minor number in its
//! upper half (`major | minor << 16`), the inline frame header grows a
//! CRC32C of the payload (`count` u32, `payload_len` u32, `crc32c` u32),
//! and the footer index is itself protected by a CRC32C written between the
//! entries and the frame count. v2.0 files remain fully readable; v2.1
//! readers verify every frame checksum before trusting the bytes, and the
//! recovery layer in [`crate::recover`] can skip corrupt frames or resync
//! after a destroyed footer instead of failing the whole analysis.
//!
//! **Version 2.2** ([`write_tagged_trace_v2`]) adds *thread tags*: every
//! frame payload is prefixed with a compact per-frame TID block before the
//! address block, so multi-threaded traces carry which thread issued each
//! reference while the address encoding (and everything downstream of it)
//! stays byte-identical:
//!
//! ```text
//! tagged payload  ntids u8                          (1..=255)
//!                 tid varint × ntids                (per-frame dictionary,
//!                                                    first-appearance order)
//!                 indices, ⌈log₂ ntids⌉ bits/ref    (omitted when ntids = 1)
//!                 address block                     (raw or delta, as v2.0/2.1)
//! ```
//!
//! The frame CRC32C covers the whole tagged payload. The minor version
//! gates the layout: only minor ≥ 2 frames carry a tag block, so untagged
//! v2.0/v2.1 files are written and parsed exactly as before, bit for bit.
//! Address-only readers ([`read_trace`], [`decode_trace`],
//! [`crate::stream::FramedStream`]) accept v2.2 files by skipping the tag
//! block; [`decode_tagged_trace`] and friends recover the tags.

use crate::{Addr, ThreadedTrace, Tid, Trace};
use rayon::prelude::*;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 8] = b"PARDATRC";
const VERSION: u32 = 1;
pub(crate) const VERSION_V2: u32 = 2;
/// v2 minor that added the per-frame and footer-index CRC32C checksums.
pub(crate) const V2_MINOR_CRC: u32 = 1;
/// v2 minor that added per-frame thread-ID tag blocks (implies checksums).
/// This is the highest v2 minor this reader understands.
pub(crate) const V2_MINOR_TID: u32 = 2;
const FOOTER_MAGIC: &[u8; 8] = b"PARDAIDX";

/// References per v2 frame: big enough that per-frame overhead (8-byte
/// header, one absolute-address varint) vanishes, small enough that a 10M
/// reference trace still fans out over ~150 frames.
pub const FRAME_REFS: usize = 65_536;

/// Fixed file header: magic + version + encoding + count.
pub(crate) const HEADER_LEN: u64 = 24;
/// Inline v2.0 frame header: count u32 + payload_len u32.
pub(crate) const FRAME_HEADER_LEN: u64 = 8;
/// Inline v2.1 frame header: count u32 + payload_len u32 + crc32c u32.
pub(crate) const FRAME_HEADER_LEN_V21: u64 = 12;
/// Footer index entry: offset u64 + count u32 + len u32.
pub(crate) const INDEX_ENTRY_LEN: u64 = 16;
/// Cap for `Vec::with_capacity` from untrusted header counts.
const PREALLOC_CAP: usize = 1 << 22;

pub(crate) fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A payload cut off mid-value is corrupt data, not a clean end-of-stream.
pub(crate) fn eof_is_corruption(e: io::Error, what: &str) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        invalid(format!("truncated {what}"))
    } else {
        e
    }
}

/// Payload encoding selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Fixed-width little-endian u64 per address.
    Raw,
    /// Zig-zag delta + LEB128 varint per address.
    DeltaVarint,
}

impl Encoding {
    fn to_u32(self) -> u32 {
        match self {
            Encoding::Raw => 0,
            Encoding::DeltaVarint => 1,
        }
    }

    fn from_u32(v: u32) -> io::Result<Self> {
        match v {
            0 => Ok(Encoding::Raw),
            1 => Ok(Encoding::DeltaVarint),
            other => Err(invalid(format!("unknown trace encoding {other}"))),
        }
    }
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one LEB128 varint. A u64 needs at most 10 bytes and the 10th byte
/// can only contribute the top bit, so anything longer or larger is
/// rejected as `InvalidData` rather than silently truncated; EOF inside a
/// value is reported as `InvalidData` too.
fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte).map_err(|e| {
            if shift > 0 {
                eof_is_corruption(e, "varint")
            } else {
                e
            }
        })?;
        let b = byte[0];
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(invalid("varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("varint longer than 10 bytes"));
        }
    }
}

/// Slice-based varint decode for the in-memory frame paths; same
/// validation as [`read_varint`], without per-byte reader dispatch.
#[inline]
fn decode_varint_slice(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| invalid("truncated varint"))?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(invalid("varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("varint longer than 10 bytes"));
        }
    }
}

/// Serialize a trace to a writer in format v1.
pub fn write_trace<W: Write>(w: W, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&encoding.to_u32().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    match encoding {
        Encoding::Raw => {
            for &a in trace.as_slice() {
                w.write_all(&a.to_le_bytes())?;
            }
        }
        Encoding::DeltaVarint => {
            let mut prev: Addr = 0;
            for &a in trace.as_slice() {
                let delta = a.wrapping_sub(prev) as i64;
                write_varint(&mut w, zigzag_encode(delta))?;
                prev = a;
            }
        }
    }
    w.flush()
}

/// Encode one frame's payload; the delta baseline resets to zero so frames
/// decode independently (the first reference costs one absolute varint).
fn encode_frame(addrs: &[Addr], encoding: Encoding, out: &mut Vec<u8>) {
    match encoding {
        Encoding::Raw => {
            out.reserve(addrs.len() * 8);
            for &a in addrs {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
        Encoding::DeltaVarint => {
            let mut prev: Addr = 0;
            for &a in addrs {
                let delta = a.wrapping_sub(prev) as i64;
                push_varint(out, zigzag_encode(delta));
                prev = a;
            }
        }
    }
}

/// Decode one frame's payload into an exactly-sized output slice.
pub(crate) fn decode_frame_into(
    payload: &[u8],
    encoding: Encoding,
    out: &mut [Addr],
) -> io::Result<()> {
    parda_failpoint::failpoint!(
        "trace::decode_frame",
        return Err(invalid("injected frame decode failure"))
    );
    match encoding {
        Encoding::Raw => {
            if payload.len() != out.len() * 8 {
                return Err(invalid("raw frame length does not match its count"));
            }
            for (slot, bytes) in out.iter_mut().zip(payload.chunks_exact(8)) {
                *slot = u64::from_le_bytes(bytes.try_into().unwrap());
            }
        }
        Encoding::DeltaVarint => {
            let mut pos = 0usize;
            let mut prev: Addr = 0;
            for slot in out.iter_mut() {
                let delta = zigzag_decode(decode_varint_slice(payload, &mut pos)?);
                prev = prev.wrapping_add(delta as u64);
                *slot = prev;
            }
            if pos != payload.len() {
                return Err(invalid("trailing bytes in frame payload"));
            }
        }
    }
    Ok(())
}

/// Bits per packed dictionary index for a tag block with `ntids` entries.
#[inline]
fn tag_index_bits(ntids: usize) -> usize {
    debug_assert!(ntids > 1);
    (usize::BITS - (ntids - 1).leading_zeros()) as usize
}

/// Append a v2.2 tag block for one frame's thread IDs: `ntids` u8, the
/// per-frame TID dictionary (varints, first-appearance order), then — when
/// the frame has more than one distinct TID — the per-reference dictionary
/// indices packed at `⌈log₂ ntids⌉` bits each, LSB-first within bytes.
fn encode_tag_block(tids: &[Tid], out: &mut Vec<u8>) -> io::Result<()> {
    debug_assert!(!tids.is_empty(), "tag block requires a non-empty frame");
    let mut dict: Vec<Tid> = Vec::new();
    let mut index_of: parda_hash::FxHashMap<Tid, u8> = Default::default();
    let mut indices: Vec<u8> = Vec::with_capacity(tids.len());
    for &t in tids {
        let idx = match index_of.get(&t) {
            Some(&i) => i,
            None => {
                if dict.len() == 255 {
                    return Err(invalid("more than 255 distinct thread IDs in one frame"));
                }
                let i = dict.len() as u8;
                dict.push(t);
                index_of.insert(t, i);
                i
            }
        };
        indices.push(idx);
    }
    out.push(dict.len() as u8);
    for &t in &dict {
        push_varint(out, u64::from(t));
    }
    if dict.len() > 1 {
        let bits = tag_index_bits(dict.len());
        let mut acc: u32 = 0;
        let mut nbits = 0usize;
        for &i in &indices {
            acc |= u32::from(i) << nbits;
            nbits += bits;
            while nbits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xff) as u8);
        }
    }
    Ok(())
}

/// Parse one frame's tag block into `count` thread IDs appended to `tids`
/// (cleared first); returns the payload offset where the address block
/// starts.
pub(crate) fn parse_tag_block(
    payload: &[u8],
    count: usize,
    tids: &mut Vec<Tid>,
) -> io::Result<usize> {
    let ntids = usize::from(
        *payload
            .first()
            .ok_or_else(|| invalid("truncated tag block"))?,
    );
    if ntids == 0 {
        return Err(invalid("tag block with zero thread IDs"));
    }
    let mut pos = 1usize;
    let mut dict: Vec<Tid> = Vec::with_capacity(ntids);
    for _ in 0..ntids {
        let v =
            decode_varint_slice(payload, &mut pos).map_err(|_| invalid("truncated tag block"))?;
        dict.push(Tid::try_from(v).map_err(|_| invalid("thread ID overflows 32 bits"))?);
    }
    tids.clear();
    tids.reserve(count);
    if ntids == 1 {
        tids.resize(count, dict[0]);
        return Ok(pos);
    }
    let bits = tag_index_bits(ntids);
    let nbytes = count
        .checked_mul(bits)
        .map(|b| b.div_ceil(8))
        .ok_or_else(|| invalid("tag block index overflow"))?;
    let idx_bytes = payload
        .get(pos..pos + nbytes)
        .ok_or_else(|| invalid("truncated tag block"))?;
    let mut acc: u32 = 0;
    let mut nbits = 0usize;
    let mut at = 0usize;
    let mask = (1u32 << bits) - 1;
    for _ in 0..count {
        while nbits < bits {
            acc |= u32::from(idx_bytes[at]) << nbits;
            at += 1;
            nbits += 8;
        }
        let i = (acc & mask) as usize;
        acc >>= bits;
        nbits -= bits;
        if i >= ntids {
            return Err(invalid("thread index out of dictionary range"));
        }
        tids.push(dict[i]);
    }
    Ok(pos + nbytes)
}

/// For a possibly-tagged frame payload, return the address block: the whole
/// payload when `tagged` is false, otherwise the bytes after a structurally
/// validated (but not decoded) tag block. This is what lets every
/// address-only reader accept v2.2 files.
pub(crate) fn split_addr_payload(payload: &[u8], tagged: bool, count: usize) -> io::Result<&[u8]> {
    if !tagged {
        return Ok(payload);
    }
    let ntids = usize::from(
        *payload
            .first()
            .ok_or_else(|| invalid("truncated tag block"))?,
    );
    if ntids == 0 {
        return Err(invalid("tag block with zero thread IDs"));
    }
    let mut pos = 1usize;
    for _ in 0..ntids {
        let v =
            decode_varint_slice(payload, &mut pos).map_err(|_| invalid("truncated tag block"))?;
        if Tid::try_from(v).is_err() {
            return Err(invalid("thread ID overflows 32 bits"));
        }
    }
    if ntids > 1 {
        let nbytes = count
            .checked_mul(tag_index_bits(ntids))
            .map(|b| b.div_ceil(8))
            .ok_or_else(|| invalid("tag block index overflow"))?;
        pos = pos
            .checked_add(nbytes)
            .ok_or_else(|| invalid("tag block index overflow"))?;
    }
    payload
        .get(pos..)
        .ok_or_else(|| invalid("truncated tag block"))
}

/// Encode one frame's payload bytes exactly as [`write_trace_v2_framed`]
/// would lay them out inside the file (delta baseline reset per frame).
///
/// Public so other transports — the `parda-server` wire protocol — can
/// carry v2 frames verbatim and share this module's decoder and CRC
/// handling.
pub fn encode_frame_payload(addrs: &[Addr], encoding: Encoding) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(addrs, encoding, &mut out);
    out
}

/// Decode one frame's payload of exactly `count` references (the count a
/// v2 inline frame header or footer index entry advertises).
///
/// `count` is validated against the payload size before any allocation:
/// raw frames are exactly 8 bytes per reference, delta-varint frames at
/// least 1 — so a lying header cannot force an oversized allocation.
pub fn decode_frame_payload(
    payload: &[u8],
    encoding: Encoding,
    count: usize,
) -> io::Result<Vec<Addr>> {
    let plausible = match encoding {
        Encoding::Raw => count.checked_mul(8) == Some(payload.len()),
        Encoding::DeltaVarint => count <= payload.len(),
    };
    if !plausible {
        return Err(invalid("frame count does not fit its payload"));
    }
    let mut out = vec![0 as Addr; count];
    decode_frame_into(payload, encoding, &mut out)?;
    Ok(out)
}

/// [`decode_frame_payload`] into a caller-owned buffer so a steady-state
/// decode loop (e.g. a server shard draining frames from many sessions)
/// performs no per-frame allocation. The buffer is cleared and resized to
/// `count`; its capacity is retained across calls.
pub fn decode_frame_payload_into(
    payload: &[u8],
    encoding: Encoding,
    count: usize,
    out: &mut Vec<Addr>,
) -> io::Result<()> {
    let plausible = match encoding {
        Encoding::Raw => count.checked_mul(8) == Some(payload.len()),
        Encoding::DeltaVarint => count <= payload.len(),
    };
    if !plausible {
        return Err(invalid("frame count does not fit its payload"));
    }
    out.clear();
    out.resize(count, 0 as Addr);
    decode_frame_into(payload, encoding, out)
}

/// Location and size of one v2 frame, as recorded in the footer index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FrameIndexEntry {
    /// File offset of the frame's inline header.
    pub offset: u64,
    /// References in the frame.
    pub count: u32,
    /// Encoded payload bytes (excluding the inline header).
    pub len: u32,
}

/// Parsed 24-byte file header.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TraceHeader {
    /// Major format version (1 or 2); the low half of the version word.
    pub version: u32,
    /// Minor format version; the high half of the version word. Minor 1
    /// adds CRC32C checksums to frames and the footer index.
    pub minor: u32,
    pub encoding: Encoding,
    pub count: u64,
}

impl TraceHeader {
    /// `true` when frames carry a CRC32C in their inline header.
    pub fn checksummed(&self) -> bool {
        self.minor >= V2_MINOR_CRC
    }

    /// Inline frame header length for this minor version.
    pub fn frame_header_len(&self) -> u64 {
        if self.checksummed() {
            FRAME_HEADER_LEN_V21
        } else {
            FRAME_HEADER_LEN
        }
    }

    /// Footer tail length after the index entries: `[index_crc u32]` (v2.1
    /// only) + `nframes u64` + magic.
    pub fn footer_tail_len(&self) -> u64 {
        if self.checksummed() {
            20
        } else {
            16
        }
    }

    /// `true` when every frame payload starts with a thread-ID tag block
    /// (v2.2).
    pub fn tagged(&self) -> bool {
        self.version == VERSION_V2 && self.minor >= V2_MINOR_TID
    }
}

pub(crate) fn parse_header(bytes: &[u8]) -> io::Result<TraceHeader> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(invalid("trace shorter than its header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(invalid("bad trace magic"));
    }
    let word = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let version = word & 0xFFFF;
    let minor = word >> 16;
    if version != VERSION && version != VERSION_V2 {
        return Err(invalid(format!("unsupported trace version {version}")));
    }
    let minor_max = if version == VERSION_V2 {
        V2_MINOR_TID
    } else {
        0
    };
    if minor > minor_max {
        return Err(invalid(format!(
            "unsupported trace version {version}.{minor}"
        )));
    }
    let encoding = Encoding::from_u32(u32::from_le_bytes(bytes[12..16].try_into().unwrap()))?;
    let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    Ok(TraceHeader {
        version,
        minor,
        encoding,
        count,
    })
}

/// Check an index against the header: contiguous frames starting right
/// after the file header, per-frame count/len consistent with the
/// encoding, non-empty frames, counts summing to the header count. Returns
/// the payload end offset (= index start).
pub(crate) fn validate_index(entries: &[FrameIndexEntry], header: &TraceHeader) -> io::Result<u64> {
    let mut expect_offset = HEADER_LEN;
    let mut total: u64 = 0;
    for e in entries {
        if e.offset != expect_offset {
            return Err(invalid("frame index offsets are not contiguous"));
        }
        // The per-encoding count/len relationship also bounds total
        // allocation by the file size (every reference costs bytes).
        check_frame_shape(e.count, e.len, header.encoding, header.tagged())?;
        total += u64::from(e.count);
        expect_offset += header.frame_header_len() + u64::from(e.len);
    }
    if total != header.count {
        return Err(invalid(format!(
            "frame counts sum to {total} but header says {}",
            header.count
        )));
    }
    Ok(expect_offset)
}

/// Parse and validate the footer index of an in-memory v2 image.
pub(crate) fn parse_footer(bytes: &[u8], header: &TraceHeader) -> io::Result<Vec<FrameIndexEntry>> {
    let tail_len = header.footer_tail_len();
    let min = HEADER_LEN + tail_len;
    if (bytes.len() as u64) < min {
        return Err(invalid("v2 trace shorter than its footer"));
    }
    if &bytes[bytes.len() - 8..] != FOOTER_MAGIC {
        return Err(invalid("bad trace index magic"));
    }
    let nframes = u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
    let index_bytes = nframes
        .checked_mul(INDEX_ENTRY_LEN)
        .ok_or_else(|| invalid("frame index overflow"))?;
    let index_start = (bytes.len() as u64)
        .checked_sub(tail_len + index_bytes)
        .filter(|&s| s >= HEADER_LEN)
        .ok_or_else(|| invalid("frame index larger than file"))?;
    let raw = &bytes[index_start as usize..index_start as usize + index_bytes as usize];
    if header.checksummed() {
        let stored = u32::from_le_bytes(
            bytes[bytes.len() - 20..bytes.len() - 16]
                .try_into()
                .unwrap(),
        );
        if parda_hash::crc32c(raw) != stored {
            return Err(invalid("frame index CRC mismatch"));
        }
    }
    let mut entries = Vec::with_capacity(nframes as usize);
    for chunk in raw.chunks_exact(INDEX_ENTRY_LEN as usize) {
        entries.push(FrameIndexEntry {
            offset: u64::from_le_bytes(chunk[..8].try_into().unwrap()),
            count: u32::from_le_bytes(chunk[8..12].try_into().unwrap()),
            len: u32::from_le_bytes(chunk[12..16].try_into().unwrap()),
        });
    }
    let payload_end = validate_index(&entries, header)?;
    if payload_end != index_start {
        return Err(invalid("frame payload does not end at the index"));
    }
    Ok(entries)
}

/// Read and validate a v2 file's header plus footer index via seeks,
/// leaving the file positioned at the first frame. This is how
/// [`crate::stream::FramedStream`] learns the frame layout without reading
/// the payload.
pub(crate) fn read_header_and_index(
    f: &mut std::fs::File,
) -> io::Result<(TraceHeader, Vec<FrameIndexEntry>)> {
    use std::io::{Seek, SeekFrom};
    let mut header_bytes = [0u8; HEADER_LEN as usize];
    f.seek(SeekFrom::Start(0))?;
    f.read_exact(&mut header_bytes)
        .map_err(|e| eof_is_corruption(e, "trace header"))?;
    let header = parse_header(&header_bytes)?;
    if header.version != VERSION_V2 {
        return Err(invalid(
            "streaming requires a v2 framed trace (regenerate with `gen --format v2`)",
        ));
    }
    let tail_len = header.footer_tail_len();
    let file_len = f.seek(SeekFrom::End(0))?;
    if file_len < HEADER_LEN + tail_len {
        return Err(invalid("v2 trace shorter than its footer"));
    }
    let mut tail = [0u8; 20];
    let tail = &mut tail[..tail_len as usize];
    f.seek(SeekFrom::End(-(tail_len as i64)))?;
    f.read_exact(tail)?;
    if &tail[tail_len as usize - 8..] != FOOTER_MAGIC {
        return Err(invalid("bad trace index magic"));
    }
    let nframes = u64::from_le_bytes(
        tail[tail_len as usize - 16..tail_len as usize - 8]
            .try_into()
            .unwrap(),
    );
    let index_bytes = nframes
        .checked_mul(INDEX_ENTRY_LEN)
        .ok_or_else(|| invalid("frame index overflow"))?;
    let index_start = file_len
        .checked_sub(tail_len + index_bytes)
        .filter(|&s| s >= HEADER_LEN)
        .ok_or_else(|| invalid("frame index larger than file"))?;
    f.seek(SeekFrom::Start(index_start))?;
    let mut raw = vec![0u8; index_bytes as usize];
    f.read_exact(&mut raw)
        .map_err(|e| eof_is_corruption(e, "frame index"))?;
    if header.checksummed() {
        let stored = u32::from_le_bytes(tail[..4].try_into().unwrap());
        if parda_hash::crc32c(&raw) != stored {
            return Err(invalid("frame index CRC mismatch"));
        }
    }
    let mut entries = Vec::with_capacity(nframes as usize);
    for chunk in raw.chunks_exact(INDEX_ENTRY_LEN as usize) {
        entries.push(FrameIndexEntry {
            offset: u64::from_le_bytes(chunk[..8].try_into().unwrap()),
            count: u32::from_le_bytes(chunk[8..12].try_into().unwrap()),
            len: u32::from_le_bytes(chunk[12..16].try_into().unwrap()),
        });
    }
    let payload_end = validate_index(&entries, &header)?;
    if payload_end != index_start {
        return Err(invalid("frame payload does not end at the index"));
    }
    f.seek(SeekFrom::Start(HEADER_LEN))?;
    Ok((header, entries))
}

/// Serialize a trace in format v2 with the default [`FRAME_REFS`] framing.
/// Writes minor version 1: every frame payload and the footer index carry a
/// CRC32C.
pub fn write_trace_v2<W: Write>(w: W, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    write_trace_v2_framed(w, trace, encoding, FRAME_REFS)
}

/// Serialize in format v2.1 with an explicit frame size (tests use tiny
/// frames to exercise multi-frame paths cheaply). Frames are encoded in
/// parallel — they are independent by construction — then written in order.
pub fn write_trace_v2_framed<W: Write>(
    w: W,
    trace: &Trace,
    encoding: Encoding,
    frame_refs: usize,
) -> io::Result<()> {
    write_trace_v2_framed_opts(w, trace, encoding, frame_refs, true)
}

/// Serialize in format v2 with explicit framing and checksum control.
/// `checksums: false` writes a pre-integrity v2.0 file (no frame CRCs, no
/// index CRC) for compatibility with older readers.
pub fn write_trace_v2_framed_opts<W: Write>(
    w: W,
    trace: &Trace,
    encoding: Encoding,
    frame_refs: usize,
    checksums: bool,
) -> io::Result<()> {
    assert!(frame_refs > 0, "frame size must be positive");
    let minor = if checksums { V2_MINOR_CRC } else { 0 };
    let version_word = VERSION_V2 | (minor << 16);
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&version_word.to_le_bytes())?;
    w.write_all(&encoding.to_u32().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;

    let chunks: Vec<&[Addr]> = trace.as_slice().chunks(frame_refs).collect();
    let frames: Vec<(Vec<u8>, u32)> = chunks
        .par_iter()
        .map(|chunk| {
            let mut buf = Vec::new();
            encode_frame(chunk, encoding, &mut buf);
            let crc = if checksums {
                parda_hash::crc32c(&buf)
            } else {
                0
            };
            (buf, crc)
        })
        .collect();

    let frame_header_len = if checksums {
        FRAME_HEADER_LEN_V21
    } else {
        FRAME_HEADER_LEN
    };
    let mut entries: Vec<FrameIndexEntry> = Vec::with_capacity(frames.len());
    let mut offset = HEADER_LEN;
    for (chunk, (payload, crc)) in chunks.iter().zip(&frames) {
        let len =
            u32::try_from(payload.len()).map_err(|_| invalid("frame payload exceeds u32 bytes"))?;
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        if checksums {
            w.write_all(&crc.to_le_bytes())?;
        }
        w.write_all(payload)?;
        entries.push(FrameIndexEntry {
            offset,
            count: chunk.len() as u32,
            len,
        });
        offset += frame_header_len + u64::from(len);
    }
    let mut index = Vec::with_capacity(entries.len() * INDEX_ENTRY_LEN as usize);
    for e in &entries {
        index.extend_from_slice(&e.offset.to_le_bytes());
        index.extend_from_slice(&e.count.to_le_bytes());
        index.extend_from_slice(&e.len.to_le_bytes());
    }
    w.write_all(&index)?;
    if checksums {
        w.write_all(&parda_hash::crc32c(&index).to_le_bytes())?;
    }
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    w.write_all(FOOTER_MAGIC)?;
    w.flush()
}

/// Serialize a thread-tagged trace in format v2.2 with the default
/// [`FRAME_REFS`] framing. Tagged files always carry checksums.
pub fn write_tagged_trace_v2<W: Write>(
    w: W,
    trace: &ThreadedTrace,
    encoding: Encoding,
) -> io::Result<()> {
    write_tagged_trace_v2_framed(w, trace, encoding, FRAME_REFS)
}

/// Serialize a thread-tagged trace in format v2.2 with an explicit frame
/// size. Each frame payload is a tag block followed by the usual address
/// block; the frame CRC covers both. Fails if any frame spans more than
/// 255 distinct thread IDs.
pub fn write_tagged_trace_v2_framed<W: Write>(
    w: W,
    trace: &ThreadedTrace,
    encoding: Encoding,
    frame_refs: usize,
) -> io::Result<()> {
    assert!(frame_refs > 0, "frame size must be positive");
    let version_word = VERSION_V2 | (V2_MINOR_TID << 16);
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&version_word.to_le_bytes())?;
    w.write_all(&encoding.to_u32().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;

    let addr_chunks: Vec<&[Addr]> = trace.addrs().chunks(frame_refs).collect();
    let tid_chunks: Vec<&[Tid]> = trace.tids().chunks(frame_refs).collect();
    let frames: Vec<io::Result<(Vec<u8>, u32)>> = addr_chunks
        .par_iter()
        .zip(tid_chunks.par_iter())
        .map(|(addrs, tids)| {
            let mut buf = Vec::new();
            encode_tag_block(tids, &mut buf)?;
            encode_frame(addrs, encoding, &mut buf);
            let crc = parda_hash::crc32c(&buf);
            Ok((buf, crc))
        })
        .collect();

    let mut entries: Vec<FrameIndexEntry> = Vec::with_capacity(frames.len());
    let mut offset = HEADER_LEN;
    for (chunk, frame) in addr_chunks.iter().zip(frames) {
        let (payload, crc) = frame?;
        let len =
            u32::try_from(payload.len()).map_err(|_| invalid("frame payload exceeds u32 bytes"))?;
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&crc.to_le_bytes())?;
        w.write_all(&payload)?;
        entries.push(FrameIndexEntry {
            offset,
            count: chunk.len() as u32,
            len,
        });
        offset += FRAME_HEADER_LEN_V21 + u64::from(len);
    }
    let mut index = Vec::with_capacity(entries.len() * INDEX_ENTRY_LEN as usize);
    for e in &entries {
        index.extend_from_slice(&e.offset.to_le_bytes());
        index.extend_from_slice(&e.count.to_le_bytes());
        index.extend_from_slice(&e.len.to_le_bytes());
    }
    w.write_all(&index)?;
    w.write_all(&parda_hash::crc32c(&index).to_le_bytes())?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    w.write_all(FOOTER_MAGIC)?;
    w.flush()
}

/// Deserialize a thread-tagged trace from a (possibly non-seekable)
/// reader. Only v2.2 tagged files qualify; untagged traces are rejected
/// rather than silently assigned a fake thread ID.
pub fn read_tagged_trace<R: Read>(r: R) -> io::Result<ThreadedTrace> {
    let mut r = BufReader::new(r);
    let mut header_bytes = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header_bytes)
        .map_err(|e| eof_is_corruption(e, "trace header"))?;
    let header = parse_header(&header_bytes)?;
    if !header.tagged() {
        return Err(invalid(
            "trace is not thread-tagged (write it with a v2.2 tagged writer)",
        ));
    }
    let count = header.count as usize;
    let mut addrs = Vec::with_capacity(count.min(PREALLOC_CAP));
    let mut tids = Vec::with_capacity(count.min(PREALLOC_CAP));
    read_v2_frames_sequential(&mut r, &header, &mut addrs, Some(&mut tids))?;
    Ok(ThreadedTrace::from_parts(addrs, tids))
}

/// Decode a complete in-memory v2.2 image, addresses and thread IDs both,
/// with the same parallel per-frame layout as [`decode_trace`].
pub fn decode_tagged_trace(bytes: &[u8]) -> io::Result<ThreadedTrace> {
    let header = parse_header(bytes)?;
    if !header.tagged() {
        return Err(invalid(
            "trace is not thread-tagged (write it with a v2.2 tagged writer)",
        ));
    }
    let entries = parse_footer(bytes, &header)?;
    let count = header.count as usize;
    let mut addrs = vec![0u64; count];

    let mut slices: Vec<&mut [Addr]> = Vec::with_capacity(entries.len());
    let mut rest = addrs.as_mut_slice();
    for e in &entries {
        let (head, tail) = rest.split_at_mut(e.count as usize);
        slices.push(head);
        rest = tail;
    }

    let fh_len = header.frame_header_len() as usize;
    let jobs: Vec<(FrameIndexEntry, &mut [Addr])> = entries.iter().copied().zip(slices).collect();
    let results: Vec<io::Result<Vec<Tid>>> = jobs
        .into_par_iter()
        .map(|(e, slice)| {
            let at = e.offset as usize;
            let fh = &bytes[at..at + fh_len];
            let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
            let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
            if fcount != e.count || flen != e.len {
                return Err(invalid("frame header disagrees with index"));
            }
            let payload = &bytes[at + fh_len..at + fh_len + flen as usize];
            let stored = u32::from_le_bytes(fh[8..12].try_into().unwrap());
            if parda_hash::crc32c(payload) != stored {
                return Err(invalid("frame CRC mismatch"));
            }
            let mut frame_tids = Vec::new();
            let off = parse_tag_block(payload, e.count as usize, &mut frame_tids)?;
            decode_frame_into(&payload[off..], header.encoding, slice)?;
            Ok(frame_tids)
        })
        .collect();
    let mut tids = Vec::with_capacity(count);
    for r in results {
        tids.extend_from_slice(&r?);
    }
    Ok(ThreadedTrace::from_parts(addrs, tids))
}

/// Write a thread-tagged trace to a file path in format v2.2.
pub fn save_tagged_trace_v2<P: AsRef<Path>>(
    path: P,
    trace: &ThreadedTrace,
    encoding: Encoding,
) -> io::Result<()> {
    write_tagged_trace_v2(std::fs::File::create(path)?, trace, encoding)
}

/// Read a thread-tagged trace from a file path via the parallel decoder.
pub fn load_tagged_trace<P: AsRef<Path>>(path: P) -> io::Result<ThreadedTrace> {
    decode_tagged_trace(&std::fs::read(path)?)
}

/// Encode one tagged frame's payload bytes exactly as
/// [`write_tagged_trace_v2_framed`] lays them out: tag block, then address
/// block. Public for the `parda-server` wire protocol.
pub fn encode_tagged_frame_payload(
    addrs: &[Addr],
    tids: &[Tid],
    encoding: Encoding,
) -> io::Result<Vec<u8>> {
    if addrs.len() != tids.len() {
        return Err(invalid("one thread ID per reference required"));
    }
    if addrs.is_empty() {
        return Err(invalid("empty tagged frame"));
    }
    let mut out = Vec::new();
    encode_tag_block(tids, &mut out)?;
    encode_frame(addrs, encoding, &mut out);
    Ok(out)
}

/// Decode one tagged frame's payload of exactly `count` references into
/// caller-owned buffers (cleared and refilled; capacity retained). The
/// advertised `count` is validated against the payload size before any
/// allocation is sized from it.
pub fn decode_tagged_frame_payload_into(
    payload: &[u8],
    encoding: Encoding,
    count: usize,
    addrs: &mut Vec<Addr>,
    tids: &mut Vec<Tid>,
) -> io::Result<()> {
    if count == 0 {
        return Err(invalid("empty tagged frame"));
    }
    let plausible = match encoding {
        // Tag block is at least 2 bytes; the address block is exact.
        Encoding::Raw => count
            .checked_mul(8)
            .and_then(|b| b.checked_add(2))
            .is_some_and(|min| min <= payload.len()),
        Encoding::DeltaVarint => count < payload.len(),
    };
    if !plausible {
        return Err(invalid("frame count does not fit its payload"));
    }
    let off = parse_tag_block(payload, count, tids)?;
    addrs.clear();
    addrs.resize(count, 0 as Addr);
    decode_frame_into(&payload[off..], encoding, addrs)
}

/// Deserialize a trace from a reader; handles v1 and (sequentially) v2.
pub fn read_trace<R: Read>(r: R) -> io::Result<Trace> {
    let mut r = BufReader::new(r);
    let mut header_bytes = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header_bytes)?;
    let header = parse_header(&header_bytes)?;
    let count = header.count as usize;

    let mut addrs = Vec::with_capacity(count.min(PREALLOC_CAP));
    if header.version == VERSION_V2 {
        read_v2_frames_sequential(&mut r, &header, &mut addrs, None)?;
    } else {
        match header.encoding {
            Encoding::Raw => {
                // Bulk path: read whole 8-byte words in large chunks rather
                // than one read_exact per reference.
                const CHUNK_REFS: usize = 1 << 16;
                let mut buf = vec![0u8; 8 * count.min(CHUNK_REFS)];
                let mut remaining = count;
                while remaining > 0 {
                    let take = remaining.min(CHUNK_REFS);
                    let bytes = &mut buf[..8 * take];
                    r.read_exact(bytes)
                        .map_err(|e| eof_is_corruption(e, "raw payload"))?;
                    addrs.extend(
                        bytes
                            .chunks_exact(8)
                            .map(|b| u64::from_le_bytes(b.try_into().unwrap())),
                    );
                    remaining -= take;
                }
            }
            Encoding::DeltaVarint => {
                let mut prev: Addr = 0;
                for _ in 0..count {
                    let delta = zigzag_decode(
                        read_varint(&mut r).map_err(|e| eof_is_corruption(e, "delta payload"))?,
                    );
                    prev = prev.wrapping_add(delta as u64);
                    addrs.push(prev);
                }
            }
        }
    }
    Ok(Trace::from_vec(addrs))
}

/// Sanity-check one inline frame header against the file header *before*
/// any allocation is sized from it: an adversarial `count`/`len` pair must
/// come back as `InvalidData`, never as a multi-gigabyte `resize` or a
/// decode panic. The encoding pins the relationship between the two fields
/// (raw: exactly 8 bytes/ref; delta: 1..=10 bytes/ref). Tagged (v2.2)
/// frames loosen the bounds by the tag block: at least 2 bytes (`ntids`
/// plus one dictionary varint), at most [`TAG_BLOCK_FIXED_MAX`] plus one
/// index byte per reference.
pub(crate) fn check_frame_shape(
    fcount: u32,
    flen: u32,
    encoding: Encoding,
    tagged: bool,
) -> io::Result<()> {
    if fcount == 0 {
        return Err(invalid("empty frame in v2 trace"));
    }
    // Dictionary-block size bounds: 1-byte ntids + up to 255 five-byte u32
    // varints; the packed indices add at most one byte per reference.
    const TAG_BLOCK_FIXED_MAX: u64 = 1 + 255 * 5;
    let (tag_min, tag_max) = if tagged {
        (2u64, TAG_BLOCK_FIXED_MAX + u64::from(fcount))
    } else {
        (0, 0)
    };
    match encoding {
        Encoding::Raw => {
            let addr_len = u64::from(fcount) * 8;
            if u64::from(flen) < addr_len + tag_min || u64::from(flen) > addr_len + tag_max {
                return Err(invalid("raw frame length does not match its count"));
            }
        }
        Encoding::DeltaVarint => {
            if u64::from(flen) < u64::from(fcount) + tag_min {
                return Err(invalid("delta frame shorter than its count"));
            }
            if u64::from(flen) > u64::from(fcount) * 10 + tag_max {
                return Err(invalid("delta frame longer than 10 bytes per reference"));
            }
        }
    }
    Ok(())
}

/// Sequential v2 path for non-seekable readers (pipes): walk the inline
/// frame headers, then read the footer and check it matches what was seen.
/// When `tids` is given (and the file is tagged) the per-reference thread
/// IDs are appended alongside the addresses; otherwise tag blocks are
/// skipped.
fn read_v2_frames_sequential<R: Read>(
    r: &mut R,
    header: &TraceHeader,
    addrs: &mut Vec<Addr>,
    mut tids: Option<&mut Vec<Tid>>,
) -> io::Result<()> {
    let count = header.count as usize;
    let fh_len = header.frame_header_len() as usize;
    let mut seen: Vec<FrameIndexEntry> = Vec::new();
    let mut offset = HEADER_LEN;
    let mut payload = Vec::new();
    let mut frame_tids: Vec<Tid> = Vec::new();
    while addrs.len() < count {
        let mut fh = [0u8; FRAME_HEADER_LEN_V21 as usize];
        let fh = &mut fh[..fh_len];
        r.read_exact(fh)
            .map_err(|e| eof_is_corruption(e, "frame header"))?;
        let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
        check_frame_shape(fcount, flen, header.encoding, header.tagged())?;
        if addrs.len() + fcount as usize > count {
            return Err(invalid("frame counts exceed header count"));
        }
        payload.resize(flen as usize, 0);
        r.read_exact(&mut payload)
            .map_err(|e| eof_is_corruption(e, "frame payload"))?;
        if header.checksummed() {
            let stored = u32::from_le_bytes(fh[8..12].try_into().unwrap());
            if parda_hash::crc32c(&payload) != stored {
                return Err(invalid("frame CRC mismatch"));
            }
        }
        let addr_payload = match tids.as_deref_mut() {
            Some(out) if header.tagged() => {
                let off = parse_tag_block(&payload, fcount as usize, &mut frame_tids)?;
                out.extend_from_slice(&frame_tids);
                &payload[off..]
            }
            _ => split_addr_payload(&payload, header.tagged(), fcount as usize)?,
        };
        let start = addrs.len();
        addrs.resize(start + fcount as usize, 0);
        decode_frame_into(addr_payload, header.encoding, &mut addrs[start..])?;
        seen.push(FrameIndexEntry {
            offset,
            count: fcount,
            len: flen,
        });
        offset += fh_len as u64 + u64::from(flen);
    }

    // Footer: one index entry per frame seen, [index crc,] nframes, magic.
    let tail_len = header.footer_tail_len() as usize;
    let index_len = seen.len() * INDEX_ENTRY_LEN as usize;
    let mut footer = vec![0u8; index_len + tail_len];
    r.read_exact(&mut footer)
        .map_err(|e| eof_is_corruption(e, "frame index"))?;
    for (i, e) in seen.iter().enumerate() {
        let at = i * INDEX_ENTRY_LEN as usize;
        let entry = FrameIndexEntry {
            offset: u64::from_le_bytes(footer[at..at + 8].try_into().unwrap()),
            count: u32::from_le_bytes(footer[at + 8..at + 12].try_into().unwrap()),
            len: u32::from_le_bytes(footer[at + 12..at + 16].try_into().unwrap()),
        };
        if entry != *e {
            return Err(invalid("frame index disagrees with frame headers"));
        }
    }
    let tail = &footer[index_len..];
    if header.checksummed() {
        let stored = u32::from_le_bytes(tail[..4].try_into().unwrap());
        if parda_hash::crc32c(&footer[..index_len]) != stored {
            return Err(invalid("frame index CRC mismatch"));
        }
    }
    let tail = &tail[tail_len - 16..];
    let nframes = u64::from_le_bytes(tail[..8].try_into().unwrap());
    if nframes != seen.len() as u64 {
        return Err(invalid("frame index count disagrees with frames read"));
    }
    if &tail[8..] != FOOTER_MAGIC {
        return Err(invalid("bad trace index magic"));
    }
    Ok(())
}

/// Decode a complete in-memory trace image (either version). For v2 the
/// frames are decoded in parallel: each frame gets a disjoint slice of the
/// preallocated output, sized from the validated footer index.
pub fn decode_trace(bytes: &[u8]) -> io::Result<Trace> {
    let header = parse_header(bytes)?;
    if header.version != VERSION_V2 {
        // v1 has no frame structure; decode the flat payload sequentially
        // (still slice-based, so no per-byte reader overhead).
        return read_trace(bytes);
    }
    let entries = parse_footer(bytes, &header)?;
    let count = header.count as usize;
    let mut out = vec![0u64; count];

    let mut slices: Vec<&mut [Addr]> = Vec::with_capacity(entries.len());
    let mut rest = out.as_mut_slice();
    for e in &entries {
        let (head, tail) = rest.split_at_mut(e.count as usize);
        slices.push(head);
        rest = tail;
    }

    let fh_len = header.frame_header_len() as usize;
    let jobs: Vec<(FrameIndexEntry, &mut [Addr])> = entries.iter().copied().zip(slices).collect();
    let results: Vec<io::Result<()>> = jobs
        .into_par_iter()
        .map(|(e, slice)| {
            let at = e.offset as usize;
            let fh = &bytes[at..at + fh_len];
            let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
            let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
            if fcount != e.count || flen != e.len {
                return Err(invalid("frame header disagrees with index"));
            }
            let payload = &bytes[at + fh_len..at + fh_len + flen as usize];
            if header.checksummed() {
                let stored = u32::from_le_bytes(fh[8..12].try_into().unwrap());
                if parda_hash::crc32c(payload) != stored {
                    return Err(invalid("frame CRC mismatch"));
                }
            }
            let addr_payload = split_addr_payload(payload, header.tagged(), e.count as usize)?;
            decode_frame_into(addr_payload, header.encoding, slice)
        })
        .collect();
    for r in results {
        r?;
    }
    Ok(Trace::from_vec(out))
}

/// Write a trace to a file path in format v1.
pub fn save_trace<P: AsRef<Path>>(path: P, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    write_trace(std::fs::File::create(path)?, trace, encoding)
}

/// Write a trace to a file path in format v2 (framed).
pub fn save_trace_v2<P: AsRef<Path>>(path: P, trace: &Trace, encoding: Encoding) -> io::Result<()> {
    write_trace_v2(std::fs::File::create(path)?, trace, encoding)
}

/// Read the major format version of a trace file from its header (the
/// minor half of the version word — e.g. the v2.1 checksum revision — is
/// masked off; majors alone decide which read path applies).
pub fn peek_version<P: AsRef<Path>>(path: P) -> io::Result<u32> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 12];
    f.read_exact(&mut head)
        .map_err(|e| eof_is_corruption(e, "trace header"))?;
    if &head[..8] != MAGIC {
        return Err(invalid("bad trace magic"));
    }
    Ok(u32::from_le_bytes(head[8..12].try_into().unwrap()) & 0xFFFF)
}

/// Read a trace from a file path. v2 files are read whole and decoded with
/// [`decode_trace`]'s parallel frame path; v1 files go through the legacy
/// streaming reader.
pub fn load_trace<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
    let path = path.as_ref();
    if peek_version(path)? == VERSION_V2 {
        decode_trace(&std::fs::read(path)?)
    } else {
        read_trace(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn frame_payload_round_trips(
            addrs in proptest::collection::vec(0u64..1 << 40, 0..300),
            raw in any::<bool>(),
        ) {
            let encoding = if raw { Encoding::Raw } else { Encoding::DeltaVarint };
            let payload = encode_frame_payload(&addrs, encoding);
            let back = decode_frame_payload(&payload, encoding, addrs.len()).unwrap();
            prop_assert_eq!(back, addrs);
        }
    }

    #[test]
    fn frame_payload_rejects_implausible_counts() {
        let payload = encode_frame_payload(&[1, 2, 3], Encoding::Raw);
        assert!(decode_frame_payload(&payload, Encoding::Raw, 4).is_err());
        assert!(decode_frame_payload(&payload, Encoding::Raw, usize::MAX / 4).is_err());
        // Delta: each reference costs at least one byte, so a count far
        // beyond the payload length must be rejected before allocating.
        let payload = encode_frame_payload(&[1, 2, 3], Encoding::DeltaVarint);
        assert!(decode_frame_payload(&payload, Encoding::DeltaVarint, payload.len() + 1).is_err());
    }

    fn round_trip(trace: &Trace, encoding: Encoding) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace, encoding).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    fn round_trip_v2(trace: &Trace, encoding: Encoding, frame_refs: usize) -> Trace {
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, trace, encoding, frame_refs).unwrap();
        let parallel = decode_trace(&buf).unwrap();
        let sequential = read_trace(buf.as_slice()).unwrap();
        assert_eq!(
            parallel, sequential,
            "parallel and sequential v2 decode differ"
        );
        parallel
    }

    #[test]
    fn raw_round_trip() {
        let t = Trace::from_vec(vec![0, u64::MAX, 42, 42, 7]);
        assert_eq!(round_trip(&t, Encoding::Raw), t);
    }

    #[test]
    fn delta_round_trip_with_wraparound() {
        let t = Trace::from_vec(vec![u64::MAX, 0, 1 << 63, 3]);
        assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        assert_eq!(round_trip(&t, Encoding::Raw), t);
        assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
    }

    #[test]
    fn delta_is_smaller_for_local_traces() {
        let t: Trace = (0..10_000u64).map(|i| 0x1000_0000 + i * 8).collect();
        let mut raw = Vec::new();
        let mut delta = Vec::new();
        write_trace(&mut raw, &t, Encoding::Raw).unwrap();
        write_trace(&mut delta, &t, Encoding::DeltaVarint).unwrap();
        assert!(
            delta.len() * 4 < raw.len(),
            "delta {} vs raw {}",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::from_vec(vec![1]), Encoding::Raw).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_trace(bad_magic.as_slice()).is_err());
        let mut bad_version = buf.clone();
        bad_version[8] = 99;
        assert!(read_trace(bad_version.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::from_vec(vec![1, 2, 3]), Encoding::Raw).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn overlong_varint_is_invalid_data() {
        // Header for a 1-reference delta trace followed by eleven
        // continuation bytes: a valid u64 varint never exceeds ten.
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new(), Encoding::DeltaVarint).unwrap();
        buf[16..24].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0x80; 11]);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Ten bytes whose final byte carries more than the one allowed bit
        // would overflow 64 bits.
        let mut overflow = Vec::new();
        write_trace(&mut overflow, &Trace::new(), Encoding::DeltaVarint).unwrap();
        overflow[16..24].copy_from_slice(&1u64.to_le_bytes());
        overflow.extend_from_slice(&[0x80; 9]);
        overflow.push(0x02);
        let err = read_trace(overflow.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_varint_is_invalid_data_not_eof() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new(), Encoding::DeltaVarint).unwrap();
        buf[16..24].copy_from_slice(&1u64.to_le_bytes());
        buf.push(0x80); // continuation bit set, then EOF
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn zigzag_is_involutive_on_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn save_and_load_via_path() {
        let dir = std::env::temp_dir().join("parda-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        let t: Trace = (0..100u64).map(|i| i * 3).collect();
        save_trace(&path, &t, Encoding::DeltaVarint).unwrap();
        assert_eq!(load_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_round_trips_across_frame_shapes() {
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            // Empty trace: zero frames, footer only.
            let empty = Trace::new();
            assert_eq!(round_trip_v2(&empty, encoding, 8), empty);
            // Single partial frame.
            let small = Trace::from_vec(vec![9, 9, u64::MAX, 0]);
            assert_eq!(round_trip_v2(&small, encoding, 8), small);
            // Exactly one full frame.
            let exact: Trace = (0..8u64).collect();
            assert_eq!(round_trip_v2(&exact, encoding, 8), exact);
            // Many frames plus a partial tail straddling the boundary.
            let big: Trace = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            assert_eq!(round_trip_v2(&big, encoding, 8), big);
        }
    }

    #[test]
    fn v2_default_framing_straddles_frame_boundary() {
        let n = FRAME_REFS + FRAME_REFS / 2;
        let t: Trace = (0..n as u64).map(|i| 0x4000_0000 + i * 16).collect();
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t, Encoding::DeltaVarint).unwrap();
        assert_eq!(decode_trace(&buf).unwrap(), t);
    }

    #[test]
    fn v2_save_load_via_path_uses_parallel_decode() {
        let dir = std::env::temp_dir().join("parda-trace-io-test-v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.trc");
        let t: Trace = (0..5000u64).map(|i| i * 7 % 1024).collect();
        save_trace_v2(&path, &t, Encoding::DeltaVarint).unwrap();
        assert_eq!(peek_version(&path).unwrap(), 2);
        assert_eq!(load_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_corruption_is_detected() {
        let t: Trace = (0..100u64).collect();
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 16).unwrap();

        let mut bad_footer = buf.clone();
        let n = bad_footer.len();
        bad_footer[n - 1] = b'!';
        assert!(decode_trace(&bad_footer).is_err());

        let mut truncated = buf.clone();
        truncated.truncate(truncated.len() - 20);
        assert!(decode_trace(&truncated).is_err());

        // Header count disagreeing with the frame counts.
        let mut miscounted = buf.clone();
        miscounted[16..24].copy_from_slice(&99u64.to_le_bytes());
        assert!(decode_trace(&miscounted).is_err());
        assert!(read_trace(miscounted.as_slice()).is_err());
    }

    #[test]
    fn v21_version_word_carries_minor() {
        let t: Trace = (0..50u64).collect();
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 16).unwrap();
        let header = parse_header(&buf).unwrap();
        assert_eq!((header.version, header.minor), (2, 1));
        assert!(header.checksummed());
        assert_eq!(header.frame_header_len(), FRAME_HEADER_LEN_V21);

        let mut legacy = Vec::new();
        write_trace_v2_framed_opts(&mut legacy, &t, Encoding::Raw, 16, false).unwrap();
        let header = parse_header(&legacy).unwrap();
        assert_eq!((header.version, header.minor), (2, 0));
        assert!(!header.checksummed());
    }

    #[test]
    fn v20_files_remain_readable() {
        let t: Trace = (0..500u64).map(|i| i.wrapping_mul(0x517C_C1B7)).collect();
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let mut buf = Vec::new();
            write_trace_v2_framed_opts(&mut buf, &t, encoding, 64, false).unwrap();
            assert_eq!(decode_trace(&buf).unwrap(), t);
            assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
        }
    }

    #[test]
    fn v21_frame_crc_detects_bit_flip() {
        let t: Trace = (0..500u64).collect();
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 64).unwrap();
        // Flip one payload bit in frame 2; raw decode would otherwise
        // accept any bytes, so only the CRC can catch this.
        let header = parse_header(&buf).unwrap();
        let entries = parse_footer(&buf, &header).unwrap();
        let poke = entries[2].offset as usize + FRAME_HEADER_LEN_V21 as usize + 9;
        buf[poke] ^= 0x04;
        let err = decode_trace(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn v21_index_crc_detects_index_flip() {
        let t: Trace = (0..500u64).collect();
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 64).unwrap();
        // Flip a bit inside an index entry's count field. The per-entry
        // validation might also catch it, but the index CRC must.
        let n = buf.len();
        let index_start = n - 20 - 8 * INDEX_ENTRY_LEN as usize;
        buf[index_start + 8] ^= 0x01;
        let err = decode_trace(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("index CRC"), "{err}");
    }

    #[test]
    fn adversarial_frame_header_is_rejected_before_allocation() {
        // Sequential v2 read with a hostile inline header: a huge
        // payload_len must come back as InvalidData without a matching
        // huge allocation. (The delta bound is 10 bytes/ref; raw is 8.)
        for (encoding, fcount, flen) in [
            (Encoding::DeltaVarint, 10u32, u32::MAX),
            (Encoding::Raw, 10, u32::MAX),
            (Encoding::DeltaVarint, 0, 0),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&(VERSION_V2 | (V2_MINOR_CRC << 16)).to_le_bytes());
            buf.extend_from_slice(&encoding.to_u32().to_le_bytes());
            buf.extend_from_slice(&10u64.to_le_bytes());
            buf.extend_from_slice(&fcount.to_le_bytes());
            buf.extend_from_slice(&flen.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes()); // crc
            buf.extend_from_slice(&[0xAA; 64]);
            let err = read_trace(buf.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{encoding:?}");
        }
    }

    proptest! {
        #[test]
        fn any_trace_round_trips_both_encodings(addrs in proptest::collection::vec(any::<u64>(), 0..300)) {
            let t = Trace::from_vec(addrs);
            prop_assert_eq!(round_trip(&t, Encoding::Raw), t.clone());
            prop_assert_eq!(round_trip(&t, Encoding::DeltaVarint), t);
        }

        /// v2 (any frame size) and v1 agree with each other and the source,
        /// covering empty traces, single frames, and frame-straddling tails.
        #[test]
        fn v2_matches_v1_and_memory(
            addrs in proptest::collection::vec(any::<u64>(), 0..300),
            frame_refs in 1usize..70,
        ) {
            let t = Trace::from_vec(addrs);
            for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
                let via_v1 = round_trip(&t, encoding);
                let via_v2 = round_trip_v2(&t, encoding, frame_refs);
                prop_assert_eq!(&via_v1, &t);
                prop_assert_eq!(&via_v2, &t);
                prop_assert_eq!(via_v1, via_v2);
            }
        }
    }

    fn round_trip_tagged(trace: &ThreadedTrace, encoding: Encoding, frame_refs: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        write_tagged_trace_v2_framed(&mut buf, trace, encoding, frame_refs).unwrap();
        let parallel = decode_tagged_trace(&buf).unwrap();
        let sequential = read_tagged_trace(buf.as_slice()).unwrap();
        assert_eq!(&parallel, trace, "parallel tagged decode differs");
        assert_eq!(&sequential, trace, "sequential tagged decode differs");
        buf
    }

    #[test]
    fn tagged_round_trips_across_frame_shapes() {
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            // Empty trace: zero frames, footer only.
            let empty = ThreadedTrace::new();
            round_trip_tagged(&empty, encoding, 8);
            // One thread only: the per-reference index block is omitted.
            let solo = ThreadedTrace::from_parts(vec![5, 5, 9, u64::MAX], vec![3; 4]);
            round_trip_tagged(&solo, encoding, 8);
            // Round-robin over enough threads to need multi-bit indices,
            // with frames straddling the thread rotation.
            let n = 1000u64;
            let rr = ThreadedTrace::from_parts(
                (0..n).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
                (0..n).map(|i| (i % 5) as Tid).collect(),
            );
            round_trip_tagged(&rr, encoding, 8);
            round_trip_tagged(&rr, encoding, 64);
        }
    }

    #[test]
    fn tagged_header_carries_minor_2() {
        let t = ThreadedTrace::from_parts(vec![1, 2, 3], vec![0, 1, 0]);
        let buf = round_trip_tagged(&t, Encoding::Raw, 8);
        let header = parse_header(&buf).unwrap();
        assert_eq!((header.version, header.minor), (2, 2));
        assert!(header.checksummed());
        assert!(header.tagged());
        assert_eq!(
            peek_version(std_tmp_write("tagged-peek.trc", &buf)).unwrap(),
            2
        );
    }

    /// Write a byte image to a temp file and return its path.
    fn std_tmp_write(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("parda-trace-io-test-tagged");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn untagged_readers_accept_tagged_files() {
        let n = 500u64;
        let t = ThreadedTrace::from_parts(
            (0..n).map(|i| 0x1000 + i * 8).collect(),
            (0..n).map(|i| (i % 3) as Tid).collect(),
        );
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let buf = round_trip_tagged(&t, encoding, 16);
            let want = Trace::from_vec(t.addrs().to_vec());
            assert_eq!(decode_trace(&buf).unwrap(), want);
            assert_eq!(read_trace(buf.as_slice()).unwrap(), want);
        }
    }

    #[test]
    fn tagged_readers_reject_untagged_files() {
        let t: Trace = (0..100u64).collect();
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::Raw, 16).unwrap();
        let err = decode_tagged_trace(&buf).unwrap_err();
        assert!(err.to_string().contains("not thread-tagged"), "{err}");
        assert!(read_tagged_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn tagged_frame_crc_detects_tag_block_flip() {
        let t = ThreadedTrace::from_parts(
            (0..200u64).collect(),
            (0..200).map(|i| (i % 4) as Tid).collect(),
        );
        let mut buf = Vec::new();
        write_tagged_trace_v2_framed(&mut buf, &t, Encoding::Raw, 32).unwrap();
        // Flip a bit inside frame 1's tag block (just past the inline
        // header): only the CRC can catch index-block corruption.
        let header = parse_header(&buf).unwrap();
        let entries = parse_footer(&buf, &header).unwrap();
        let poke = entries[1].offset as usize + FRAME_HEADER_LEN_V21 as usize + 2;
        buf[poke] ^= 0x10;
        let err = decode_tagged_trace(&buf).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        let err = decode_trace(&buf).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn tagged_frame_rejects_too_many_threads() {
        // 256 distinct TIDs in a single frame exceed the u8 dictionary.
        let n = 256u64;
        let t = ThreadedTrace::from_parts((0..n).collect(), (0..n as Tid).collect());
        let mut buf = Vec::new();
        let err = write_tagged_trace_v2_framed(&mut buf, &t, Encoding::Raw, 512).unwrap_err();
        assert!(err.to_string().contains("255"), "{err}");
        // Split across frames the same TIDs fit fine.
        let mut ok = Vec::new();
        write_tagged_trace_v2_framed(&mut ok, &t, Encoding::Raw, 128).unwrap();
        assert_eq!(decode_tagged_trace(&ok).unwrap(), t);
    }

    #[test]
    fn tagged_wire_payload_round_trips() {
        let addrs: Vec<Addr> = (0..100u64).map(|i| i * 64).collect();
        let tids: Vec<Tid> = (0..100).map(|i| (i % 7) as Tid).collect();
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let payload = encode_tagged_frame_payload(&addrs, &tids, encoding).unwrap();
            let mut got_addrs = Vec::new();
            let mut got_tids = Vec::new();
            decode_tagged_frame_payload_into(
                &payload,
                encoding,
                addrs.len(),
                &mut got_addrs,
                &mut got_tids,
            )
            .unwrap();
            assert_eq!(got_addrs, addrs);
            assert_eq!(got_tids, tids);
            // A lying count is rejected before any decode.
            assert!(decode_tagged_frame_payload_into(
                &payload,
                encoding,
                usize::MAX / 8,
                &mut got_addrs,
                &mut got_tids,
            )
            .is_err());
        }
    }

    proptest! {
        /// Tagged traces round-trip through the parallel and sequential
        /// readers for any TID assignment and frame size.
        #[test]
        fn tagged_round_trips_any_assignment(
            refs in proptest::collection::vec((any::<u64>(), 0u32..12), 0..300),
            frame_refs in 1usize..70,
            raw in any::<bool>(),
        ) {
            let encoding = if raw { Encoding::Raw } else { Encoding::DeltaVarint };
            let (addrs, tids): (Vec<Addr>, Vec<Tid>) = refs.into_iter().unzip();
            let t = ThreadedTrace::from_parts(addrs, tids);
            round_trip_tagged(&t, encoding, frame_refs);
        }
    }
}

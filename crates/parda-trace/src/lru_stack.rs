//! An indexable LRU stack with O(log M) operations.
//!
//! The model-driven generator ([`crate::gen::StackDistGen`]) inverts reuse
//! distance analysis: it *samples* a stack depth and must fetch the address
//! at that depth, then move it to the top. A `Vec` gives O(M) per access; a
//! plain list can't index. This structure uses the classic time-slot +
//! Fenwick technique: every address occupies a monotonically increasing
//! "time slot", a Fenwick tree counts live slots, and depth-k lookup becomes
//! a rank-select query. Slots are compacted in O(M) when the slot array
//! fills, which amortizes to O(1) per access.

use crate::{Addr, Fenwick};

const EMPTY: Addr = Addr::MAX;

/// LRU stack supporting depth-indexed access.
///
/// Depth 0 is the most recently used element.
///
/// # Examples
///
/// ```
/// use parda_trace::LruStack;
///
/// let mut s = LruStack::new();
/// s.push_new(10);
/// s.push_new(20);
/// s.push_new(30);                  // stack: 30 20 10
/// assert_eq!(s.access_depth(2), 10); // stack: 10 30 20
/// assert_eq!(s.access_depth(0), 10);
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct LruStack {
    /// `slots[t]` = address whose last touch was at slot time `t`, or EMPTY.
    slots: Vec<Addr>,
    /// Occupancy (1 per live slot).
    fenwick: Fenwick,
    /// Next free slot time.
    next: usize,
    live: usize,
}

impl Default for LruStack {
    fn default() -> Self {
        Self::new()
    }
}

impl LruStack {
    const INITIAL_SLOTS: usize = 64;

    /// Create an empty stack.
    pub fn new() -> Self {
        Self {
            slots: vec![EMPTY; Self::INITIAL_SLOTS],
            fenwick: Fenwick::new(Self::INITIAL_SLOTS),
            next: 0,
            live: 0,
        }
    }

    /// Number of live (distinct) addresses.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no address is on the stack.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Push a never-seen address onto the top of the stack.
    pub fn push_new(&mut self, addr: Addr) {
        debug_assert_ne!(addr, EMPTY, "sentinel address is reserved");
        self.ensure_slot();
        self.slots[self.next] = addr;
        self.fenwick.add(self.next, 1);
        self.next += 1;
        self.live += 1;
    }

    /// Address at `depth` (0 = most recent) without reordering.
    pub fn peek_depth(&self, depth: usize) -> Option<Addr> {
        if depth >= self.live {
            return None;
        }
        // The element at depth d is the (live - d)-th occupied slot from the
        // left (slots are in access-time order).
        let rank = (self.live - depth) as u64;
        let slot = self.fenwick.select(rank).expect("rank within total");
        Some(self.slots[slot])
    }

    /// Touch the element at `depth`, moving it to the top. Returns its
    /// address. Panics if `depth >= len()`.
    pub fn access_depth(&mut self, depth: usize) -> Addr {
        assert!(
            depth < self.live,
            "depth {depth} out of range (len {})",
            self.live
        );
        let rank = (self.live - depth) as u64;
        let slot = self.fenwick.select(rank).expect("rank within total");
        let addr = self.slots[slot];
        if depth == 0 {
            return addr; // already on top; no slot movement needed
        }
        // Vacate first and keep `live` consistent: `ensure_slot` may compact,
        // and compaction counts exactly the occupied slots.
        self.slots[slot] = EMPTY;
        self.fenwick.sub(slot, 1);
        self.live -= 1;
        self.ensure_slot();
        self.slots[self.next] = addr;
        self.fenwick.add(self.next, 1);
        self.next += 1;
        self.live += 1;
        addr
    }

    /// The stack from most to least recently used (O(M); diagnostics/tests).
    pub fn to_vec(&self) -> Vec<Addr> {
        let mut out = Vec::with_capacity(self.live);
        for t in (0..self.next).rev() {
            let a = self.slots[t];
            if a != EMPTY {
                out.push(a);
            }
        }
        out
    }

    /// Make sure `self.next` is a valid slot, compacting or growing as
    /// needed.
    fn ensure_slot(&mut self) {
        if self.next < self.slots.len() {
            return;
        }
        if self.live * 2 <= self.slots.len() {
            // At least half the slots are holes: compact in place.
            self.compact();
        } else {
            // Mostly live: double the slot array, then compact into it.
            let new_len = self.slots.len() * 2;
            self.slots.resize(new_len, EMPTY);
            self.compact();
        }
    }

    /// Slide live entries to the front, preserving order, and rebuild the
    /// Fenwick tree.
    fn compact(&mut self) {
        let mut write = 0;
        for read in 0..self.next {
            let a = self.slots[read];
            if a != EMPTY {
                self.slots[write] = a;
                write += 1;
            }
        }
        let clear_end = self.next.min(self.slots.len());
        for slot in &mut self.slots[write..clear_end] {
            *slot = EMPTY;
        }
        debug_assert_eq!(write, self.live);
        self.next = write;
        self.fenwick = Fenwick::new(self.slots.len());
        for t in 0..write {
            self.fenwick.add(t, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference: Vec with index 0 = top.
    #[derive(Default)]
    struct NaiveLru(Vec<Addr>);

    impl NaiveLru {
        fn push_new(&mut self, a: Addr) {
            self.0.insert(0, a);
        }

        fn access_depth(&mut self, d: usize) -> Addr {
            let a = self.0.remove(d);
            self.0.insert(0, a);
            a
        }
    }

    #[test]
    fn push_and_peek() {
        let mut s = LruStack::new();
        for a in [1u64, 2, 3] {
            s.push_new(a);
        }
        assert_eq!(s.peek_depth(0), Some(3));
        assert_eq!(s.peek_depth(1), Some(2));
        assert_eq!(s.peek_depth(2), Some(1));
        assert_eq!(s.peek_depth(3), None);
        assert_eq!(s.to_vec(), vec![3, 2, 1]);
    }

    #[test]
    fn access_moves_to_front() {
        let mut s = LruStack::new();
        for a in [1u64, 2, 3, 4] {
            s.push_new(a);
        }
        assert_eq!(s.access_depth(3), 1);
        assert_eq!(s.to_vec(), vec![1, 4, 3, 2]);
        assert_eq!(s.access_depth(0), 1, "depth 0 is a no-op move");
        assert_eq!(s.to_vec(), vec![1, 4, 3, 2]);
        assert_eq!(s.access_depth(2), 3);
        assert_eq!(s.to_vec(), vec![3, 1, 4, 2]);
    }

    #[test]
    fn survives_many_compactions() {
        let mut s = LruStack::new();
        for a in 0..16u64 {
            s.push_new(a);
        }
        // Thousands of touches force repeated slot exhaustion + compaction.
        for i in 0..10_000usize {
            s.access_depth(i % 16);
        }
        assert_eq!(s.len(), 16);
        let mut contents = s.to_vec();
        contents.sort_unstable();
        assert_eq!(contents, (0..16u64).collect::<Vec<_>>());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = LruStack::new();
        for a in 0..10_000u64 {
            s.push_new(a);
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.peek_depth(9_999), Some(0));
        assert_eq!(s.access_depth(9_999), 0);
        assert_eq!(s.peek_depth(0), Some(0));
    }

    proptest! {
        #[test]
        fn matches_naive_model(ops in proptest::collection::vec(any::<u16>(), 1..400)) {
            let mut fast = LruStack::new();
            let mut slow = NaiveLru::default();
            let mut next_addr = 0u64;
            for op in ops {
                if slow.0.is_empty() || op % 3 == 0 {
                    slow.push_new(next_addr);
                    fast.push_new(next_addr);
                    next_addr += 1;
                } else {
                    let d = (op as usize) % slow.0.len();
                    prop_assert_eq!(fast.access_depth(d), slow.access_depth(d));
                }
                prop_assert_eq!(fast.len(), slow.0.len());
            }
            prop_assert_eq!(fast.to_vec(), slow.0);
        }
    }
}

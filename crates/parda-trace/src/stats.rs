//! Summary statistics over traces.

use crate::Addr;
use parda_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// Basic shape parameters of a trace: the `N` and `M` of the paper's
/// complexity analysis plus the address span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total references (`N`).
    pub n: u64,
    /// Distinct addresses (`M`).
    pub m: u64,
    /// Smallest address referenced (0 for an empty trace).
    pub min_addr: Addr,
    /// Largest address referenced (0 for an empty trace).
    pub max_addr: Addr,
}

impl TraceStats {
    /// Compute statistics in one pass.
    pub fn compute(addrs: &[Addr]) -> Self {
        if addrs.is_empty() {
            return Self::default();
        }
        let mut set = FxHashSet::default();
        let mut min_addr = Addr::MAX;
        let mut max_addr = Addr::MIN;
        for &a in addrs {
            set.insert(a);
            min_addr = min_addr.min(a);
            max_addr = max_addr.max(a);
        }
        Self {
            n: addrs.len() as u64,
            m: set.len() as u64,
            min_addr,
            max_addr,
        }
    }

    /// M/N: the footprint ratio used to scale the SPEC models.
    pub fn footprint_ratio(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m as f64 / self.n as f64
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N={} M={} span=[{:#x}, {:#x}]",
            self.n, self.m, self.min_addr, self.max_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.footprint_ratio(), 0.0);
    }

    #[test]
    fn computes_n_m_and_span() {
        let s = TraceStats::compute(&[5, 1, 5, 9, 1]);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 3);
        assert_eq!(s.min_addr, 1);
        assert_eq!(s.max_addr, 9);
        assert!((s.footprint_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let s = TraceStats::compute(&[16]);
        assert_eq!(s.to_string(), "N=1 M=1 span=[0x10, 0x10]");
    }
}

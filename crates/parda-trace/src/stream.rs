//! Streaming decode of v2 framed traces.
//!
//! [`FramedStream`] turns a v2 trace file into an [`AddressStream`] without
//! ever materializing the whole trace: a reader thread walks the frames in
//! file order and hands each compressed payload to one of a small pool of
//! decoder threads; decoded frames flow back through a bounded channel and
//! are re-sequenced by the consumer. All channels are bounded, so the
//! pipeline is double-buffered rather than unbounded — while the analyzer
//! (e.g. `parda_phased`) chews on phase *k*, the decoders are already
//! producing the frames of phase *k+1*, and if the analyzer stalls, the
//! readers block instead of ballooning memory.
//!
//! This is the paper's "process traces as they are produced" pipeline
//! applied to decompression: decode bandwidth overlaps analysis instead of
//! preceding it.
//!
//! Corruption handling follows the stream's [`Degradation`] policy
//! ([`FramedStream::open_with_policy`]). Under `Strict` (the default) the
//! stream stops at the first bad frame and records the error in its
//! [`StreamErrorHandle`]. Under the lossy policies each corrupt frame —
//! CRC mismatch, short read, undecodable payload — is quarantined and the
//! stream continues with the next frame; the reader re-seeks to every
//! frame's indexed offset, so one bad frame never misaligns the rest of the
//! file. Skips are tallied in the shared [`RecoveryMetrics`]
//! ([`FramedStream::recovery_handle`]). A destroyed *footer* cannot be
//! streamed around (the index is what the pipeline seeks by); callers fall
//! back to [`crate::recover::decode_trace_recovering`] for that.

use crate::io::{
    decode_frame_into, eof_is_corruption, invalid, parse_tag_block, read_header_and_index,
    FrameIndexEntry,
};
use crate::recover::Degradation;
use crate::{Addr, AddressStream, Tid};
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use parda_obs::{RecoveryMetrics, Stopwatch, StreamCounters};
use std::collections::HashMap;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Frames in flight per decoder: one being decoded plus one queued. Small
/// on purpose — bounded buffering is what makes the pipeline streaming.
const FRAMES_IN_FLIGHT_PER_DECODER: usize = 2;

/// Shared slot recording the first I/O error hit by the pipeline.
///
/// `parda_phased` consumes the stream by value, so a caller that wants to
/// distinguish "clean end of trace" from "stream died mid-file" keeps a
/// handle from [`FramedStream::error_handle`] and checks it afterwards.
#[derive(Clone, Default)]
pub struct StreamErrorHandle {
    slot: Arc<Mutex<Option<std::io::Error>>>,
}

impl StreamErrorHandle {
    fn set(&self, e: std::io::Error) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Take the recorded error, if any.
    pub fn take(&self) -> Option<std::io::Error> {
        self.slot.lock().unwrap().take()
    }
}

/// A decoded frame payload: the addresses plus, for v2.2 tagged files,
/// the per-reference thread IDs.
type FramePayload = std::io::Result<(Vec<Addr>, Vec<Tid>)>;

/// One decoded frame, keyed by sequence number.
type DecodedFrame = (u64, FramePayload);

/// Reader → decoder work item: sequence, ref count, stored CRC32C (v2.1
/// files only), encoded payload.
type FrameJob = (u64, u32, Option<u32>, Vec<u8>);

/// An [`AddressStream`] over a v2 trace file, decoded by background threads.
pub struct FramedStream {
    done_rx: Option<Receiver<DecodedFrame>>,
    pending: HashMap<u64, FramePayload>,
    next_seq: u64,
    nframes: u64,
    total_refs: u64,
    tagged: bool,
    current: Vec<Addr>,
    current_tids: Vec<Tid>,
    pos: usize,
    error: StreamErrorHandle,
    failed: bool,
    handles: Vec<JoinHandle<()>>,
    counters: Arc<StreamCounters>,
    policy: Degradation,
    /// Per-frame ref counts from the index, so a skipped frame's loss can
    /// be tallied without the frame.
    frame_counts: Vec<u32>,
    recovery: Arc<Mutex<RecoveryMetrics>>,
}

impl FramedStream {
    /// Open a v2 trace with a decoder pool sized from the machine.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let decoders = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        Self::open_with(path, decoders)
    }

    /// Open a v2 trace with an explicit number of decoder threads.
    pub fn open_with<P: AsRef<Path>>(path: P, decoders: usize) -> std::io::Result<Self> {
        Self::open_with_policy(path, decoders, Degradation::Strict)
    }

    /// Open a v2 trace with an explicit decoder count and degradation
    /// policy. The header and footer index must be intact regardless of
    /// policy (the pipeline seeks by the index); per-frame corruption is
    /// skipped under the lossy policies.
    pub fn open_with_policy<P: AsRef<Path>>(
        path: P,
        decoders: usize,
        policy: Degradation,
    ) -> std::io::Result<Self> {
        let decoders = decoders.max(1);
        let mut file = File::open(path)?;
        let (header, entries) = read_header_and_index(&mut file)?;
        let nframes = entries.len() as u64;
        let total_refs = header.count;
        let encoding = header.encoding;
        let tagged = header.tagged();
        let frame_counts: Vec<u32> = entries.iter().map(|e| e.count).collect();
        let error = StreamErrorHandle::default();
        let recovery = Arc::new(Mutex::new(RecoveryMetrics {
            frames_total: nframes,
            ..Default::default()
        }));

        // Frame payloads travel reader → decoder i (round-robin), decoded
        // frames decoder → consumer; both legs bounded.
        let mut work_txs: Vec<Sender<FrameJob>> = Vec::with_capacity(decoders);
        let mut work_rxs: Vec<Receiver<FrameJob>> = Vec::with_capacity(decoders);
        for _ in 0..decoders {
            let (tx, rx) = bounded(FRAMES_IN_FLIGHT_PER_DECODER);
            work_txs.push(tx);
            work_rxs.push(rx);
        }
        let (done_tx, done_rx) = bounded(decoders * FRAMES_IN_FLIGHT_PER_DECODER + 1);
        let counters = Arc::new(StreamCounters::default());

        let mut handles = Vec::with_capacity(decoders + 1);
        for work_rx in work_rxs {
            let done_tx = done_tx.clone();
            let counters = counters.clone();
            let recovery = recovery.clone();
            handles.push(std::thread::spawn(move || {
                loop {
                    // Time spent waiting for the reader to hand over work:
                    // decoder starvation (the reader or the disk is the
                    // bottleneck).
                    let idle = Stopwatch::start();
                    let Ok((seq, count, crc, payload)) = work_rx.recv() else {
                        return; // reader done; work channel closed
                    };
                    counters.decoder_idle_ns.add(idle.ns());

                    let sw = Stopwatch::start();
                    #[allow(unused_mut)]
                    let mut result = match crc {
                        Some(stored) if parda_hash::crc32c(&payload) != stored => {
                            lock_metrics(&recovery).crc_failures += 1;
                            Err(invalid("frame CRC mismatch"))
                        }
                        _ => {
                            let mut tids = Vec::new();
                            let tag = if tagged {
                                parse_tag_block(&payload, count as usize, &mut tids)
                            } else {
                                Ok(0)
                            };
                            tag.and_then(|off| {
                                let mut out = vec![0u64; count as usize];
                                decode_frame_into(&payload[off..], encoding, &mut out)
                                    .map(|()| (out, tids))
                            })
                        }
                    };
                    parda_failpoint::failpoint!(
                        "stream::decode",
                        result = Err(invalid("injected stream decode failure"))
                    );
                    counters.decode_ns.add(sw.ns());
                    if result.is_ok() {
                        counters.frames_decoded.incr();
                        counters.refs_decoded.add(count as u64);
                    }

                    // Hand the frame to the consumer; a full channel means
                    // analysis is the bottleneck and backpressure engages.
                    match done_tx.try_send((seq, result)) {
                        Ok(()) => {}
                        Err(TrySendError::Full(msg)) => {
                            counters.backpressure_stalls.incr();
                            let sw = Stopwatch::start();
                            if done_tx.send(msg).is_err() {
                                return; // consumer dropped; stop decoding
                            }
                            counters.backpressure_ns.add(sw.ns());
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return; // consumer dropped; stop decoding
                        }
                    }
                }
            }));
        }

        let checksummed = header.checksummed();
        let fh_len = header.frame_header_len() as usize;
        handles.push(std::thread::spawn(move || {
            read_frames(
                &mut file,
                &entries,
                fh_len,
                checksummed,
                &work_txs,
                &done_tx,
            );
        }));

        Ok(Self {
            done_rx: Some(done_rx),
            pending: HashMap::new(),
            next_seq: 0,
            nframes,
            total_refs,
            tagged,
            current: Vec::new(),
            current_tids: Vec::new(),
            pos: 0,
            error,
            failed: false,
            handles,
            counters,
            policy,
            frame_counts,
            recovery,
        })
    }

    /// Total references in the trace (from the validated header).
    pub fn len(&self) -> u64 {
        self.total_refs
    }

    /// `true` when the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.total_refs == 0
    }

    /// Number of frames in the file.
    pub fn frames(&self) -> u64 {
        self.nframes
    }

    /// `true` when the file carries thread tags (v2.2); only then do
    /// [`FramedStream::next_tagged`] and [`FramedStream::fill_tagged`]
    /// produce anything.
    pub fn tagged(&self) -> bool {
        self.tagged
    }

    /// Produce the next `(thread ID, address)` pair, or `None` at end of
    /// stream. Panics on an untagged stream — check
    /// [`FramedStream::tagged`] first.
    pub fn next_tagged(&mut self) -> Option<(Tid, Addr)> {
        assert!(self.tagged, "next_tagged on an untagged stream");
        loop {
            if let Some(&a) = self.current.get(self.pos) {
                let tid = self.current_tids[self.pos];
                self.pos += 1;
                return Some((tid, a));
            }
            if !self.advance_frame() {
                return None;
            }
        }
    }

    /// Append up to `n` references to the parallel `addrs`/`tids` buffers;
    /// returns how many were produced (less than `n` only at end of
    /// stream). Panics on an untagged stream.
    pub fn fill_tagged(&mut self, addrs: &mut Vec<Addr>, tids: &mut Vec<Tid>, n: usize) -> usize {
        assert!(self.tagged, "fill_tagged on an untagged stream");
        let mut produced = 0;
        while produced < n {
            if self.pos >= self.current.len() {
                if !self.advance_frame() {
                    break;
                }
                continue;
            }
            let take = (n - produced).min(self.current.len() - self.pos);
            addrs.extend_from_slice(&self.current[self.pos..self.pos + take]);
            tids.extend_from_slice(&self.current_tids[self.pos..self.pos + take]);
            self.pos += take;
            produced += take;
        }
        produced
    }

    /// Handle for checking, after analysis, whether the stream ended early
    /// because of an I/O or corruption error.
    pub fn error_handle(&self) -> StreamErrorHandle {
        self.error.clone()
    }

    /// Shared pipeline counters (frames decoded, decoder idle time,
    /// backpressure stalls). Snapshot after the analysis has consumed the
    /// stream — the same pattern as [`FramedStream::error_handle`], since
    /// `parda_phased` takes the stream by value.
    pub fn stats_handle(&self) -> Arc<StreamCounters> {
        self.counters.clone()
    }

    /// Shared recovery tally: frames skipped and references dropped by the
    /// lossy policies (plus CRC failures observed by the decoders).
    /// Snapshot after analysis, like [`FramedStream::stats_handle`].
    pub fn recovery_handle(&self) -> Arc<Mutex<RecoveryMetrics>> {
        self.recovery.clone()
    }

    /// Make the next decoded frame current, skipping quarantined frames
    /// under the lossy policies. Returns `false` at end of stream or on a
    /// fatal error (recorded in the error handle).
    fn advance_frame(&mut self) -> bool {
        while !self.failed && self.next_seq < self.nframes {
            let rx = self
                .done_rx
                .as_ref()
                .expect("receiver lives until the stream is dropped");
            let result = loop {
                if let Some(r) = self.pending.remove(&self.next_seq) {
                    break r;
                }
                let wait = Stopwatch::start();
                let received = rx.recv();
                self.counters.consumer_wait_ns.add(wait.ns());
                match received {
                    Ok((seq, r)) => {
                        if seq == self.next_seq {
                            break r;
                        }
                        self.pending.insert(seq, r);
                    }
                    Err(_) => {
                        break Err(invalid(
                            "trace decode pipeline stopped before the final frame",
                        ))
                    }
                }
            };
            match result {
                Ok((frame, tids)) => {
                    self.current = frame;
                    self.current_tids = tids;
                    self.pos = 0;
                    self.next_seq += 1;
                    return true;
                }
                Err(_) if self.policy.is_lossy() => {
                    // Quarantine this frame and move on. The reader seeks
                    // each frame independently, so later frames are
                    // unaffected by this one's corruption.
                    let seq = self.next_seq;
                    let refs = self
                        .frame_counts
                        .get(seq as usize)
                        .copied()
                        .unwrap_or_default();
                    lock_metrics(&self.recovery).skip_frame(seq, u64::from(refs));
                    self.next_seq += 1;
                }
                Err(e) => {
                    self.error.set(e);
                    self.failed = true;
                    return false;
                }
            }
        }
        false
    }
}

/// Poison-tolerant metrics lock: a decoder that panicked mid-update must
/// not wedge everyone else's tallies.
fn lock_metrics(m: &Mutex<RecoveryMetrics>) -> std::sync::MutexGuard<'_, RecoveryMetrics> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Reader-thread body: stream every frame's payload to the decoder pool in
/// round-robin order. Each frame is read at its indexed offset, so one
/// frame's short read or header damage cannot shift later frames; a broken
/// frame is surfaced to the consumer as that sequence number's error and
/// the reader moves on.
fn read_frames(
    file: &mut File,
    entries: &[FrameIndexEntry],
    fh_len: usize,
    checksummed: bool,
    work_txs: &[Sender<FrameJob>],
    done_tx: &Sender<DecodedFrame>,
) {
    use std::io::{Seek, SeekFrom};
    for (i, entry) in entries.iter().enumerate() {
        let seq = i as u64;
        let read = (|| {
            parda_failpoint::failpoint!(
                "stream::read_frame",
                return Err(invalid("injected frame read failure"))
            );
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut fh = [0u8; 12];
            let fh = &mut fh[..fh_len];
            file.read_exact(fh)
                .map_err(|e| eof_is_corruption(e, "frame header"))?;
            let fcount = u32::from_le_bytes(fh[..4].try_into().unwrap());
            let flen = u32::from_le_bytes(fh[4..8].try_into().unwrap());
            if fcount != entry.count || flen != entry.len {
                return Err(invalid("frame header disagrees with index"));
            }
            let crc = checksummed.then(|| u32::from_le_bytes(fh[8..12].try_into().unwrap()));
            let mut payload = vec![0u8; flen as usize];
            file.read_exact(&mut payload)
                .map_err(|e| eof_is_corruption(e, "frame payload"))?;
            Ok((crc, payload))
        })();
        match read {
            Ok((crc, payload)) => {
                if work_txs[i % work_txs.len()]
                    .send((seq, entry.count, crc, payload))
                    .is_err()
                {
                    return; // consumer gone; quiet shutdown
                }
            }
            Err(e) => {
                if done_tx.send((seq, Err(e))).is_err() {
                    return; // consumer gone; quiet shutdown
                }
            }
        }
    }
}

impl AddressStream for FramedStream {
    fn next_addr(&mut self) -> Option<Addr> {
        loop {
            if let Some(&a) = self.current.get(self.pos) {
                self.pos += 1;
                return Some(a);
            }
            if !self.advance_frame() {
                return None;
            }
        }
    }

    fn fill(&mut self, buf: &mut Vec<Addr>, n: usize) -> usize {
        parda_failpoint::failpoint!("stream::fill");
        let mut produced = 0;
        while produced < n {
            if self.pos >= self.current.len() {
                if !self.advance_frame() {
                    break;
                }
                continue;
            }
            let take = (n - produced).min(self.current.len() - self.pos);
            buf.extend_from_slice(&self.current[self.pos..self.pos + take]);
            self.pos += take;
            produced += take;
        }
        produced
    }
}

impl Drop for FramedStream {
    fn drop(&mut self) {
        // Closing the done channel unblocks any decoder mid-send; decoders
        // exiting close the work channels, which unblocks the reader.
        self.done_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{save_trace, save_trace_v2, write_trace_v2_framed, Encoding};
    use crate::Trace;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("parda-trace-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn collect(mut s: FramedStream) -> Vec<Addr> {
        let mut out = Vec::new();
        while s.fill(&mut out, 1000) > 0 {}
        out
    }

    #[test]
    fn streams_all_frames_in_order() {
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let t: Trace = (0..10_000u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9) >> 16)
                .collect();
            let path = tmp(&format!("ordered-{:?}.trc", encoding));
            let mut f = std::fs::File::create(&path).unwrap();
            write_trace_v2_framed(&mut f, &t, encoding, 512).unwrap();
            drop(f);
            let stream = FramedStream::open_with(&path, 3).unwrap();
            assert_eq!(stream.len(), 10_000);
            assert_eq!(stream.frames(), 20);
            let err = stream.error_handle();
            assert_eq!(collect(stream), t.as_slice());
            assert!(err.take().is_none());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn counters_account_for_every_frame() {
        let t: Trace = (0..8_000u64).map(|i| i * 7).collect();
        let path = tmp("counted.trc");
        let mut f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(&mut f, &t, Encoding::DeltaVarint, 500).unwrap();
        drop(f);
        let stream = FramedStream::open_with(&path, 2).unwrap();
        let stats = stream.stats_handle();
        assert_eq!(collect(stream), t.as_slice());
        let snap = stats.snapshot();
        assert_eq!(snap.frames_decoded, 16, "8000 refs / 500-ref frames");
        assert_eq!(snap.refs_decoded, 8_000);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn next_addr_matches_fill() {
        let t: Trace = (0..999u64).map(|i| i * 3).collect();
        let path = tmp("next-addr.trc");
        let mut f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(&mut f, &t, Encoding::DeltaVarint, 100).unwrap();
        drop(f);
        let mut s = FramedStream::open_with(&path, 2).unwrap();
        let mut out = Vec::new();
        while let Some(a) = s.next_addr() {
            out.push(a);
        }
        assert_eq!(out, t.as_slice());
        assert_eq!(s.next_addr(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_streams_nothing() {
        let path = tmp("empty.trc");
        save_trace_v2(&path, &Trace::new(), Encoding::DeltaVarint).unwrap();
        let mut s = FramedStream::open(&path).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.next_addr(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_v1_traces() {
        let path = tmp("v1.trc");
        save_trace(&path, &Trace::from_vec(vec![1, 2, 3]), Encoding::Raw).unwrap();
        assert!(FramedStream::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Byte offset of frame `i`'s payload, read from the footer index.
    fn frame_payload_offset(bytes: &[u8], frame: usize) -> usize {
        let header = crate::io::parse_header(bytes).unwrap();
        let entries = crate::io::parse_footer(bytes, &header).unwrap();
        entries[frame].offset as usize + header.frame_header_len() as usize
    }

    #[test]
    fn corrupt_frame_stops_stream_and_records_error() {
        let t: Trace = (0..1000u64).collect();
        let path = tmp("corrupt.trc");
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 100).unwrap();
        // Flip a byte inside the 6th frame's payload so its CRC fails.
        let poke = frame_payload_offset(&buf, 5) + 40;
        buf[poke] ^= 0x80;
        std::fs::write(&path, &buf).unwrap();
        let s = FramedStream::open_with(&path, 2).unwrap();
        let err = s.error_handle();
        let got = collect(s);
        // Everything before the corrupt frame arrives intact, nothing after.
        assert!(got.len() <= 500, "stream must stop at the corrupt frame");
        assert_eq!(got.as_slice(), &t.as_slice()[..got.len()]);
        assert!(err.take().is_some(), "error handle must record the failure");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lossy_policy_skips_corrupt_frame_and_continues() {
        let t: Trace = (0..1000u64).collect();
        let path = tmp("lossy.trc");
        let mut buf = Vec::new();
        write_trace_v2_framed(&mut buf, &t, Encoding::DeltaVarint, 100).unwrap();
        let poke = frame_payload_offset(&buf, 5) + 40;
        buf[poke] ^= 0x80;
        std::fs::write(&path, &buf).unwrap();
        for policy in [crate::Degradation::Repair, crate::Degradation::BestEffort] {
            let s = FramedStream::open_with_policy(&path, 2, policy).unwrap();
            let err = s.error_handle();
            let recovery = s.recovery_handle();
            let got = collect(s);
            // Frame 5 (refs 500..600) is quarantined; everything else flows.
            let mut expect: Vec<u64> = t.as_slice()[..500].to_vec();
            expect.extend_from_slice(&t.as_slice()[600..]);
            assert_eq!(got.as_slice(), expect.as_slice());
            assert!(err.take().is_none(), "lossy skip is not a stream error");
            let m = recovery.lock().unwrap();
            assert_eq!(m.frames_skipped, 1);
            assert_eq!(m.refs_dropped, 100);
            assert_eq!(m.crc_failures, 1);
            assert_eq!(m.skipped_frames, vec![5]);
            assert_eq!(m.frames_total, 10);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v20_decode_failure_is_skipped_under_repair() {
        // Pre-checksum v2.0 file: corruption is caught by decode validation
        // rather than a CRC, and the lossy stream still quarantines just
        // that frame.
        let t: Trace = (0..1000u64).collect();
        let path = tmp("v20-lossy.trc");
        let mut buf = Vec::new();
        crate::io::write_trace_v2_framed_opts(&mut buf, &t, Encoding::DeltaVarint, 100, false)
            .unwrap();
        // A dangling continuation bit on frame 9's final varint byte is
        // guaranteed undecodable.
        let header = crate::io::parse_header(&buf).unwrap();
        let entries = crate::io::parse_footer(&buf, &header).unwrap();
        let e = entries[9];
        let poke = e.offset as usize + header.frame_header_len() as usize + e.len as usize - 1;
        buf[poke] = 0x80;
        std::fs::write(&path, &buf).unwrap();

        let s = FramedStream::open_with_policy(&path, 2, crate::Degradation::Repair).unwrap();
        let recovery = s.recovery_handle();
        let got = collect(s);
        assert_eq!(got.as_slice(), &t.as_slice()[..900]);
        let m = recovery.lock().unwrap();
        assert_eq!(m.frames_skipped, 1);
        assert_eq!(m.skipped_frames, vec![9]);
        assert_eq!(m.crc_failures, 0, "v2.0 files have no CRCs to fail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tagged_stream_yields_tids_and_plain_addrs() {
        let n = 5000u64;
        let t = crate::ThreadedTrace::from_parts(
            (0..n).map(|i| i.wrapping_mul(0x9E37_79B9) >> 16).collect(),
            (0..n).map(|i| (i % 6) as Tid).collect(),
        );
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let path = tmp(&format!("tagged-{encoding:?}.trc"));
            crate::io::save_tagged_trace_v2(&path, &t, encoding).unwrap();

            // Tagged consumption recovers both parallel streams.
            let mut s = FramedStream::open_with(&path, 3).unwrap();
            assert!(s.tagged());
            let (mut addrs, mut tids) = (Vec::new(), Vec::new());
            while s.fill_tagged(&mut addrs, &mut tids, 700) > 0 {}
            assert_eq!(addrs.as_slice(), t.addrs());
            assert_eq!(tids.as_slice(), t.tids());

            // Untagged consumers see the plain interleaved address stream.
            let s = FramedStream::open_with(&path, 3).unwrap();
            assert_eq!(collect(s), t.addrs());

            // next_tagged agrees with fill_tagged.
            let mut s = FramedStream::open_with(&path, 2).unwrap();
            let mut pairs = Vec::new();
            while let Some(p) = s.next_tagged() {
                pairs.push(p);
            }
            assert_eq!(pairs.len(), n as usize);
            assert_eq!(pairs[7], (t.tids()[7], t.addrs()[7]));
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn untagged_stream_reports_not_tagged() {
        let path = tmp("untagged-flag.trc");
        save_trace_v2(&path, &Trace::from_vec(vec![1, 2, 3]), Encoding::Raw).unwrap();
        let s = FramedStream::open(&path).unwrap();
        assert!(!s.tagged());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dropping_mid_stream_does_not_hang() {
        let t: Trace = (0..50_000u64).collect();
        let path = tmp("dropped.trc");
        let mut f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(&mut f, &t, Encoding::Raw, 256).unwrap();
        drop(f);
        let mut s = FramedStream::open_with(&path, 2).unwrap();
        assert_eq!(s.next_addr(), Some(0));
        drop(s); // must join cleanly with most frames unread
        std::fs::remove_file(&path).unwrap();
    }
}

//! Offline stand-in for `proptest`: generate-only property testing.
//!
//! Implements the macro surface the workspace's tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! `prop_map`, `proptest::collection::vec`, and range/tuple strategies.
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case number, and the per-test RNG is seeded deterministically from
//! the test name, so failures reproduce exactly on re-run. Case count
//! defaults to 64 and follows `PROPTEST_CASES` when set.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so each test gets a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// How many cases each `proptest!` test runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(64)
}

/// A value generator.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy, so heterogeneous `prop_oneof!` arms can mix.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

/// Object-safe mirror of [`Strategy`].
pub trait DynStrategy<V> {
    /// Produce one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed arms (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy for [`any`].
pub trait Arbitrary: Sized {
    /// Sample one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`] (inclusive on both ends).
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy built by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        Strategy, Union,
    };
}

/// Define property tests: each runs [`case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property test (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Uniform choice among strategies with possibly different concrete types.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![(0u64..100).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        /// Ranges stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 0usize..=4, z in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-5..5).contains(&z), "z = {}", z);
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u64>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() <= 5);
        }

        #[test]
        fn tuples_compose(t in (any::<bool>(), 0u64..64, any::<u32>())) {
            let (_, mid, _) = t;
            prop_assert!(mid < 64);
        }

        #[test]
        fn oneof_hits_every_arm(ops in collection::vec(op_strategy(), 64..65)) {
            // With 64 draws the odds of missing an arm are ~2^-64.
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Push(_))));
            prop_assert!(ops.contains(&Op::Pop));
            prop_assert_eq!(ops.len(), 64);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

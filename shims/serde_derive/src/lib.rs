//! Offline stand-in for `serde_derive`, written without `syn`/`quote`.
//!
//! The macros hand-parse the item's `TokenStream` (attributes, visibility,
//! `struct`/`enum`, named fields or unit/newtype variants) and emit the
//! trait impl as source text. This covers exactly the shapes the workspace
//! derives on: non-generic structs with named fields, and enums mixing unit
//! and single-field tuple variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    let mut out = String::new();
    match &item.shape {
        Shape::Struct(fields) => {
            let mut pairs = String::new();
            for f in fields {
                write!(
                    pairs,
                    "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Object(vec![{pairs}])\
                     }}\
                 }}",
                name = item.name
            )
            .unwrap();
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    write!(
                        arms,
                        "{name}::{v}(x) => ::serde::Value::Object(vec![\
                             ({v:?}.to_string(), ::serde::Serialize::to_value(x)),\
                         ]),",
                        name = item.name,
                        v = v.name
                    )
                    .unwrap();
                } else {
                    write!(
                        arms,
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),",
                        name = item.name,
                        v = v.name
                    )
                    .unwrap();
                }
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}",
                name = item.name
            )
            .unwrap();
        }
    }
    out.parse().expect("serde_derive shim emitted invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    let mut out = String::new();
    match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                write!(
                    inits,
                    "{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}",
                name = item.name
            )
            .unwrap();
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    write!(
                        arms,
                        "::serde::Value::Object(fields) \
                             if fields.len() == 1 && fields[0].0 == {v:?} => \
                             ::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(&fields[0].1)?)),",
                        name = item.name,
                        v = v.name
                    )
                    .unwrap();
                } else {
                    write!(
                        arms,
                        "::serde::Value::Str(s) if s == {v:?} => \
                             ::std::result::Result::Ok({name}::{v}),",
                        name = item.name,
                        v = v.name
                    )
                    .unwrap();
                }
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         match v {{\
                             {arms}\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::custom(\
                                     concat!(\"unknown variant for \", {name:?}))),\
                         }}\
                     }}\
                 }}",
                name = item.name
            )
            .unwrap();
        }
    }
    out.parse().expect("serde_derive shim emitted invalid Rust")
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let toks: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        skip_attrs_and_vis(&toks, &mut i);
        let kind = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected struct/enum, got {other}"),
        };
        i += 1;
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected item name, got {other}"),
        };
        i += 1;
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("serde_derive shim: generic types are not supported (item `{name}`)");
        }
        let body = match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => {
                panic!("serde_derive shim: only brace-bodied items are supported, got {other}")
            }
        };
        let shape = match kind.as_str() {
            "struct" => Shape::Struct(parse_named_fields(body)),
            "enum" => Shape::Enum(parse_variants(body)),
            other => panic!("serde_derive shim: cannot derive for `{other}` items"),
        };
        Item { name, shape }
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`
/// visibility, with or without a `(crate)`-style restriction.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other}"),
        }
        // Skip the type: commas inside `(...)`/`[...]` are hidden in groups,
        // so only angle brackets need explicit depth tracking.
        let mut angle_depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    has_payload = true;
                    if g.stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Punct(p) if p.as_char() == ','))
                    {
                        panic!(
                            "serde_derive shim: variant `{name}` has multiple fields; \
                             only newtype variants are supported"
                        );
                    }
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive shim: struct variants are not supported (`{name}`)")
                }
                _ => {}
            }
        }
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                panic!("serde_derive shim: expected `,` after variant, got {other}")
            }
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

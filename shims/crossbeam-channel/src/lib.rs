//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Crossbeam exposes one `Sender` type for bounded and unbounded channels;
//! std splits them into `Sender`/`SyncSender`, so the shim's [`Sender`]
//! wraps both behind crossbeam's unified blocking-send semantics: a send on
//! a full bounded channel blocks (producer back-pressure), a send on a
//! disconnected channel returns [`SendError`].

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

enum Tx<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
        }
    }
}

/// Sending half of a channel. Cloneable; blocks on a full bounded channel.
pub struct Sender<T>(Tx<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Errors only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.0 {
            Tx::Unbounded(tx) => tx.send(msg),
            Tx::Bounded(tx) => tx.send(msg),
        }
    }

    /// Non-blocking send: `TrySendError::Full` when a bounded channel has no
    /// free slot (unbounded channels are never full), `Disconnected` when
    /// every receiver has been dropped.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match &self.0 {
            Tx::Unbounded(tx) => tx
                .send(msg)
                .map_err(|SendError(m)| TrySendError::Disconnected(m)),
            Tx::Bounded(tx) => tx.try_send(msg),
        }
    }
}

/// Receiving half of a channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    /// Blocking iterator over incoming messages; ends when senders drop.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Channel with unlimited buffering: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(Tx::Unbounded(tx)), Receiver(rx))
}

/// Channel buffering at most `cap` messages; sends block when full
/// (`cap == 0` is a rendezvous channel, as in crossbeam).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(Tx::Bounded(tx)), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_delivers_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_when_full() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv frees a slot
            3
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "send should still be blocked");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(4)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }

        let (utx, urx) = unbounded();
        utx.try_send(9u8).unwrap();
        drop(urx);
        assert!(matches!(
            utx.try_send(10),
            Err(TrySendError::Disconnected(10))
        ));
    }

    #[test]
    fn cloned_senders_share_the_channel() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.iter().count(), 2);
    }
}

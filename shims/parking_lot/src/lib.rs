//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`
//! returns the guard directly. A poisoned std lock means a thread panicked
//! while holding it; parking_lot would have released the lock anyway, so the
//! shim unwraps into the inner value to preserve those semantics.

use std::sync::TryLockError;

/// Mutex with parking_lot's non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// RwLock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_respects_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(3);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 6);
    }
}

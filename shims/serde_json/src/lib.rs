//! Offline stand-in for `serde_json` over the serde shim's [`Value`] tree.
//!
//! `to_string` emits compact JSON (`{"a":1}` — no spaces), matching what the
//! workspace's report tests assert. `from_str` is a full recursive-descent
//! JSON parser (strings with escapes, numbers with fraction/exponent,
//! arrays, objects, literals).

pub use serde::{Error, Value};

/// Serialize to compact JSON.
pub fn to_string<S: serde::Serialize + ?Sized>(value: &S) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse JSON and convert into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<S: serde::Serialize + ?Sized>(value: &S) -> Value {
    value.to_value()
}

/// Build a [`Value`] from JSON-ish literal syntax.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN/Infinity"));
            }
            // `{}` prints integral floats without a fraction ("1"); that is
            // still valid JSON and round-trips through the numeric coercions
            // in the serde shim's Deserialize impls.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte aware).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_is_compact() {
        assert_eq!(to_string(&json!({"a": 1})).unwrap(), r#"{"a":1}"#);
        assert_eq!(to_string(&json!({})).unwrap(), "{}");
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#" {"xs": [1, -2, 3.5], "s": "a\"b", "t": true} "#).unwrap();
        assert_eq!(
            v.field("xs").unwrap(),
            &Value::Array(vec![Value::U64(1), Value::I64(-2), Value::F64(3.5)])
        );
        assert_eq!(v.field("s").unwrap(), &Value::Str("a\"b".to_string()));
        assert_eq!(v.field("t").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn round_trips_value_trees() {
        let v = json!({"name": "zipf", "ns": [1, 2, 3], "ratio": 0.5});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        // Compare as text: JSON does not distinguish I64(1) from U64(1).
        assert_eq!(to_string(&back).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("123 tail").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn exponents_and_escapes() {
        let v: Value = from_str(r#"[1e3, 2.5E-1, "A\n"]"#).unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::F64(1000.0),
                Value::F64(0.25),
                Value::Str("A\n".to_string())
            ])
        );
    }
}

//! Offline stand-in for `serde`: a value-tree serialization model.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! JSON-shaped [`Value`] tree. The derive macros (re-exported from the
//! `serde_derive` shim) generate those conversions with the same JSON
//! conventions real serde uses for the shapes in this workspace: structs
//! become objects in field order, unit enum variants become strings, and
//! newtype variants become single-key objects.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so struct
/// serialization is deterministic and matches field declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object, or error with the missing key name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Error::unexpected("object", other),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    fn unexpected<T>(wanted: &str, got: &Value) -> Result<T, Error> {
        Err(Error(format!("expected {wanted}, found {}", got.kind())))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Error::unexpected("integer", other),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Error::unexpected("integer", other),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            // JSON cannot distinguish 1.0 from 1, so accept integers too.
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Error::unexpected("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Error::unexpected("bool", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Error::unexpected("string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Error::unexpected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected a tuple of {expected}, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Error::unexpected("array", other),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(f64::from_value(&Value::U64(3)), Ok(3.0));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)];
        let tree = v.to_value();
        assert_eq!(Vec::<(usize, f64)>::from_value(&tree), Ok(v));
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let obj = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        assert_eq!(obj.field("a"), Ok(&Value::U64(1)));
        let err = obj.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}

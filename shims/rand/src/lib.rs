//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides the pieces this workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and easily
//! good enough for synthetic trace generation and tests (not for
//! cryptography, exactly like the real `StdRng` contract minus the CSPRNG).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges know how to sample. A single blanket
/// `SampleRange` impl per range shape keeps type inference working the way
/// real rand's does: `Range<T>` only samples `T`, so integer literals in
/// the range unify with the use site (`u64 += rng.gen_range(1..4)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                };
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small generator is the same xoshiro256++.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 16 slots");
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(4));
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_generic_bounds() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> usize {
            let b = rng.gen_range(0..4usize);
            let x: u64 = rng.gen();
            b + (x % 2) as usize
        }
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(sample(&mut rng) < 6);
        }
    }
}

//! Offline stand-in for `criterion`'s benchmark harness.
//!
//! Mirrors the API the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`) with two modes, chosen
//! the same way cargo drives real criterion:
//!
//! - `cargo bench` passes `--bench`: every benchmark runs a warmup plus
//!   `sample_size` timed samples and reports the median (and throughput
//!   when configured).
//! - `cargo test` passes no flag: each benchmark body runs once as a smoke
//!   test, so the tier-1 suite stays fast while still catching panics.
//!
//! A positional argument filters benchmarks by substring, like libtest.

use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Smoke,
    Measure,
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for groups benchmarking one function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                mode = Mode::Measure;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Self { mode, filter }
    }
}

impl Criterion {
    /// `true` under `cargo bench` (timed samples), `false` in the smoke
    /// runs `cargo test` performs. Benches use this to pick workload sizes:
    /// full-scale when measuring, small when smoke-testing.
    pub fn measuring(&self) -> bool {
        self.mode == Mode::Measure
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.mode, &self.filter, name, None, 20, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_benchmark(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.throughput,
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        run_benchmark(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (report separation in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the workload.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run the benchmarked routine: once in smoke mode, warmup + timed
    /// samples in measure mode.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(f());
            }
            Mode::Measure => {
                std::hint::black_box(f()); // warmup
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    std::hint::black_box(f());
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

fn run_benchmark<F>(
    mode: Mode,
    filter: &Option<String>,
    full_name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !full_name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if mode == Mode::Smoke {
        return;
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{full_name:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| {
        let secs = median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("{:>10.2} Melem/s", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("{:>10.2} MiB/s", n as f64 / secs / (1 << 20) as f64),
        }
    });
    println!(
        "{full_name:<48} median {:>12} {}",
        format_duration(median),
        rate.unwrap_or_default()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("decode", 8).text, "decode/8");
        assert_eq!(BenchmarkId::from_parameter(64).text, "64");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut criterion = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut criterion = Criterion {
            mode: Mode::Measure,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("timed", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 6, "warmup + 5 samples");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            mode: Mode::Smoke,
            filter: Some("other".to_string()),
        };
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("skipped", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }
}

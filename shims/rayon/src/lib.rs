//! Offline stand-in for `rayon`'s parallel iterators.
//!
//! Implements the slice of the rayon API this workspace uses — `par_iter`,
//! `into_par_iter`, `zip`, `map`, `for_each`, `collect` — with real
//! parallelism: work is split into contiguous chunks, one per worker, and
//! executed on `std::thread::scope` threads. Order is preserved, so
//! `collect` matches rayon's indexed semantics. Worker count follows
//! `RAYON_NUM_THREADS` when set, else `std::thread::available_parallelism`.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to use for `n` items.
fn workers_for(n: usize) -> usize {
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.min(n).max(1)
}

/// Map `f` over `items` on a scoped thread pool, preserving order.
fn execute<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let workers = workers_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunk per worker: sizes differ by at most one.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        chunks.push(iter.by_ref().take(size).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// An eager indexed parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair up with another parallel iterator of the same length, like
    /// rayon's indexed `zip` (truncates to the shorter side).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Lazily apply `f` to every item; runs when consumed.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        execute(self.items, &|item| f(item));
    }

    /// Collect the items (order-preserving).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; executes on `collect`/`for_each`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
    F: Sync,
{
    /// Execute the map in parallel and collect results in order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O,
        C: From<Vec<O>>,
    {
        C::from(execute(self.items, &self.f))
    }

    /// Execute the map in parallel, discarding results.
    pub fn for_each<O>(self)
    where
        O: Send,
        F: Fn(T) -> O,
    {
        execute(self.items, &self.f);
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing conversion: `par_iter()` over `&Vec<T>` / `&[T]`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;

    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Index-stamped items (shim-internal helper; rayon calls this
    /// `enumerate`, kept distinct to avoid implying the full indexed API).
    pub fn enumerate_shim(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_pairs_in_order() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        let sums: Vec<u32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert!(sums.iter().all(|&s| s == sums[0] + (s - sums[0])));
        assert_eq!(sums[0], 100);
        assert_eq!(sums[99], 99 + 199);
    }

    #[test]
    fn for_each_sees_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let v: Vec<u64> = (1..=1000).collect();
        v.into_par_iter().for_each(|x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn disjoint_mut_slices_can_be_filled_in_parallel() {
        let mut out = vec![0u64; 100];
        let parts: Vec<&mut [u64]> = out.chunks_mut(10).collect();
        parts
            .into_par_iter()
            .enumerate_shim()
            .for_each(|(i, part)| part.fill(i as u64));
        for (i, chunk) in out.chunks(10).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as u64));
        }
    }
}

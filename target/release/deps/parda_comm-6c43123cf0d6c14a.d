/root/repo/target/release/deps/parda_comm-6c43123cf0d6c14a.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/release/deps/libparda_comm-6c43123cf0d6c14a.rlib: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/release/deps/libparda_comm-6c43123cf0d6c14a.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

/root/repo/target/release/deps/parda_comm-699fd9ba3add24f4.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/release/deps/libparda_comm-699fd9ba3add24f4.rlib: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/release/deps/libparda_comm-699fd9ba3add24f4.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

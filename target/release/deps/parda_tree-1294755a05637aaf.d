/root/repo/target/release/deps/parda_tree-1294755a05637aaf.d: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

/root/repo/target/release/deps/libparda_tree-1294755a05637aaf.rlib: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

/root/repo/target/release/deps/libparda_tree-1294755a05637aaf.rmeta: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

crates/parda-tree/src/lib.rs:
crates/parda-tree/src/avl.rs:
crates/parda-tree/src/fenwick.rs:
crates/parda-tree/src/naive.rs:
crates/parda-tree/src/splay.rs:
crates/parda-tree/src/treap.rs:
crates/parda-tree/src/vector.rs:

/root/repo/target/release/deps/parda-727219e947707390.d: crates/parda-cli/src/main.rs

/root/repo/target/release/deps/parda-727219e947707390: crates/parda-cli/src/main.rs

crates/parda-cli/src/main.rs:

/root/repo/target/release/deps/table4-6984605baf30ea03.d: crates/parda-bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-6984605baf30ea03: crates/parda-bench/src/bin/table4.rs

crates/parda-bench/src/bin/table4.rs:

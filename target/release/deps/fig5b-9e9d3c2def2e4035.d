/root/repo/target/release/deps/fig5b-9e9d3c2def2e4035.d: crates/parda-bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-9e9d3c2def2e4035: crates/parda-bench/src/bin/fig5b.rs

crates/parda-bench/src/bin/fig5b.rs:

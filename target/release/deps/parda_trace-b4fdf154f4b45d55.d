/root/repo/target/release/deps/parda_trace-b4fdf154f4b45d55.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/xform.rs

/root/repo/target/release/deps/libparda_trace-b4fdf154f4b45d55.rlib: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/xform.rs

/root/repo/target/release/deps/libparda_trace-b4fdf154f4b45d55.rmeta: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/xform.rs

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/xform.rs:

/root/repo/target/release/deps/parda-0f46dd17ed28fd35.d: src/lib.rs

/root/repo/target/release/deps/libparda-0f46dd17ed28fd35.rlib: src/lib.rs

/root/repo/target/release/deps/libparda-0f46dd17ed28fd35.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/parda_hist-0ff88072af62f41a.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/release/deps/libparda_hist-0ff88072af62f41a.rlib: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/release/deps/libparda_hist-0ff88072af62f41a.rmeta: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:

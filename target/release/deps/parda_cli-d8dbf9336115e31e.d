/root/repo/target/release/deps/parda_cli-d8dbf9336115e31e.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/release/deps/libparda_cli-d8dbf9336115e31e.rlib: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/release/deps/libparda_cli-d8dbf9336115e31e.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

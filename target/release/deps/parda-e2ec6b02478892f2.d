/root/repo/target/release/deps/parda-e2ec6b02478892f2.d: src/lib.rs

/root/repo/target/release/deps/libparda-e2ec6b02478892f2.rlib: src/lib.rs

/root/repo/target/release/deps/libparda-e2ec6b02478892f2.rmeta: src/lib.rs

src/lib.rs:

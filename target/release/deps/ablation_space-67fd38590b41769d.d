/root/repo/target/release/deps/ablation_space-67fd38590b41769d.d: crates/parda-bench/src/bin/ablation_space.rs

/root/repo/target/release/deps/ablation_space-67fd38590b41769d: crates/parda-bench/src/bin/ablation_space.rs

crates/parda-bench/src/bin/ablation_space.rs:

/root/repo/target/release/deps/fig4-41aaa6d4df1339ca.d: crates/parda-bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-41aaa6d4df1339ca: crates/parda-bench/src/bin/fig4.rs

crates/parda-bench/src/bin/fig4.rs:

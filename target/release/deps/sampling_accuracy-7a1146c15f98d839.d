/root/repo/target/release/deps/sampling_accuracy-7a1146c15f98d839.d: crates/parda-bench/src/bin/sampling_accuracy.rs

/root/repo/target/release/deps/sampling_accuracy-7a1146c15f98d839: crates/parda-bench/src/bin/sampling_accuracy.rs

crates/parda-bench/src/bin/sampling_accuracy.rs:

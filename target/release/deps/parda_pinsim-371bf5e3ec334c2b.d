/root/repo/target/release/deps/parda_pinsim-371bf5e3ec334c2b.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/release/deps/libparda_pinsim-371bf5e3ec334c2b.rlib: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/release/deps/libparda_pinsim-371bf5e3ec334c2b.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

/root/repo/target/release/deps/fig5a-c6e6b2d089da0f64.d: crates/parda-bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-c6e6b2d089da0f64: crates/parda-bench/src/bin/fig5a.rs

crates/parda-bench/src/bin/fig5a.rs:

/root/repo/target/release/deps/parda_trace-13a81bbd8d71ccbc.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

/root/repo/target/release/deps/libparda_trace-13a81bbd8d71ccbc.rlib: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

/root/repo/target/release/deps/libparda_trace-13a81bbd8d71ccbc.rmeta: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/stream.rs:
crates/parda-trace/src/xform.rs:

/root/repo/target/release/deps/parda_pinsim-390b168f3d89d431.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/release/deps/libparda_pinsim-390b168f3d89d431.rlib: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/release/deps/libparda_pinsim-390b168f3d89d431.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

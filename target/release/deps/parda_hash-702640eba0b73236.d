/root/repo/target/release/deps/parda_hash-702640eba0b73236.d: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

/root/repo/target/release/deps/libparda_hash-702640eba0b73236.rlib: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

/root/repo/target/release/deps/libparda_hash-702640eba0b73236.rmeta: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

crates/parda-hash/src/lib.rs:
crates/parda-hash/src/fx.rs:
crates/parda-hash/src/map.rs:
crates/parda-hash/src/table.rs:

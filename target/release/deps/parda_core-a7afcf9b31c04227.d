/root/repo/target/release/deps/parda_core-a7afcf9b31c04227.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/release/deps/libparda_core-a7afcf9b31c04227.rlib: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/release/deps/libparda_core-a7afcf9b31c04227.rmeta: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:

/root/repo/target/release/deps/parda_bench-0cc0a855219f9dc2.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/release/deps/libparda_bench-0cc0a855219f9dc2.rlib: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/release/deps/libparda_bench-0cc0a855219f9dc2.rmeta: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

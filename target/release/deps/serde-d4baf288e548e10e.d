/root/repo/target/release/deps/serde-d4baf288e548e10e.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d4baf288e548e10e.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-d4baf288e548e10e.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

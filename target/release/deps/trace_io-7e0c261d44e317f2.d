/root/repo/target/release/deps/trace_io-7e0c261d44e317f2.d: crates/parda-bench/benches/trace_io.rs

/root/repo/target/release/deps/trace_io-7e0c261d44e317f2: crates/parda-bench/benches/trace_io.rs

crates/parda-bench/benches/trace_io.rs:

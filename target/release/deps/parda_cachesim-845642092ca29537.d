/root/repo/target/release/deps/parda_cachesim-845642092ca29537.d: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

/root/repo/target/release/deps/libparda_cachesim-845642092ca29537.rlib: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

/root/repo/target/release/deps/libparda_cachesim-845642092ca29537.rmeta: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

crates/parda-cachesim/src/lib.rs:
crates/parda-cachesim/src/lru.rs:
crates/parda-cachesim/src/plru.rs:
crates/parda-cachesim/src/set_assoc.rs:

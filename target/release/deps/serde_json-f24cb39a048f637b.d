/root/repo/target/release/deps/serde_json-f24cb39a048f637b.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f24cb39a048f637b.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f24cb39a048f637b.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

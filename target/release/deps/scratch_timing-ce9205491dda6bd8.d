/root/repo/target/release/deps/scratch_timing-ce9205491dda6bd8.d: crates/parda-bench/tests/scratch_timing.rs

/root/repo/target/release/deps/scratch_timing-ce9205491dda6bd8: crates/parda-bench/tests/scratch_timing.rs

crates/parda-bench/tests/scratch_timing.rs:

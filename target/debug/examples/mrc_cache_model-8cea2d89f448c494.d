/root/repo/target/debug/examples/mrc_cache_model-8cea2d89f448c494.d: examples/mrc_cache_model.rs

/root/repo/target/debug/examples/mrc_cache_model-8cea2d89f448c494: examples/mrc_cache_model.rs

examples/mrc_cache_model.rs:

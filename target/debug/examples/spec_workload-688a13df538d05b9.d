/root/repo/target/debug/examples/spec_workload-688a13df538d05b9.d: examples/spec_workload.rs

/root/repo/target/debug/examples/spec_workload-688a13df538d05b9: examples/spec_workload.rs

examples/spec_workload.rs:

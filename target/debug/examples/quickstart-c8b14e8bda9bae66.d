/root/repo/target/debug/examples/quickstart-c8b14e8bda9bae66.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c8b14e8bda9bae66: examples/quickstart.rs

examples/quickstart.rs:

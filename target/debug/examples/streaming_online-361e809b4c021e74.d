/root/repo/target/debug/examples/streaming_online-361e809b4c021e74.d: examples/streaming_online.rs

/root/repo/target/debug/examples/streaming_online-361e809b4c021e74: examples/streaming_online.rs

examples/streaming_online.rs:

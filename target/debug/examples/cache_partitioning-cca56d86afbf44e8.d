/root/repo/target/debug/examples/cache_partitioning-cca56d86afbf44e8.d: examples/cache_partitioning.rs Cargo.toml

/root/repo/target/debug/examples/libcache_partitioning-cca56d86afbf44e8.rmeta: examples/cache_partitioning.rs Cargo.toml

examples/cache_partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

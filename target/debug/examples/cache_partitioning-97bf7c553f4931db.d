/root/repo/target/debug/examples/cache_partitioning-97bf7c553f4931db.d: examples/cache_partitioning.rs

/root/repo/target/debug/examples/cache_partitioning-97bf7c553f4931db: examples/cache_partitioning.rs

examples/cache_partitioning.rs:

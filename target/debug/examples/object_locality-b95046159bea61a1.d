/root/repo/target/debug/examples/object_locality-b95046159bea61a1.d: examples/object_locality.rs Cargo.toml

/root/repo/target/debug/examples/libobject_locality-b95046159bea61a1.rmeta: examples/object_locality.rs Cargo.toml

examples/object_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

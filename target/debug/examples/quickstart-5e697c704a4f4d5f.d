/root/repo/target/debug/examples/quickstart-5e697c704a4f4d5f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5e697c704a4f4d5f: examples/quickstart.rs

examples/quickstart.rs:

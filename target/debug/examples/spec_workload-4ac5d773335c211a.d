/root/repo/target/debug/examples/spec_workload-4ac5d773335c211a.d: examples/spec_workload.rs

/root/repo/target/debug/examples/spec_workload-4ac5d773335c211a: examples/spec_workload.rs

examples/spec_workload.rs:

/root/repo/target/debug/examples/mrc_cache_model-7eecd79586bdb8e4.d: examples/mrc_cache_model.rs

/root/repo/target/debug/examples/mrc_cache_model-7eecd79586bdb8e4: examples/mrc_cache_model.rs

examples/mrc_cache_model.rs:

/root/repo/target/debug/examples/spec_workload-0b34abf09a023ca7.d: examples/spec_workload.rs Cargo.toml

/root/repo/target/debug/examples/libspec_workload-0b34abf09a023ca7.rmeta: examples/spec_workload.rs Cargo.toml

examples/spec_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

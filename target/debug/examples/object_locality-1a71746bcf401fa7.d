/root/repo/target/debug/examples/object_locality-1a71746bcf401fa7.d: examples/object_locality.rs

/root/repo/target/debug/examples/object_locality-1a71746bcf401fa7: examples/object_locality.rs

examples/object_locality.rs:

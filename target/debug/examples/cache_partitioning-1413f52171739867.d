/root/repo/target/debug/examples/cache_partitioning-1413f52171739867.d: examples/cache_partitioning.rs

/root/repo/target/debug/examples/cache_partitioning-1413f52171739867: examples/cache_partitioning.rs

examples/cache_partitioning.rs:

/root/repo/target/debug/examples/object_locality-eddb295802970532.d: examples/object_locality.rs

/root/repo/target/debug/examples/object_locality-eddb295802970532: examples/object_locality.rs

examples/object_locality.rs:

/root/repo/target/debug/examples/streaming_online-93e8d1a9946ab616.d: examples/streaming_online.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_online-93e8d1a9946ab616.rmeta: examples/streaming_online.rs Cargo.toml

examples/streaming_online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/streaming_online-3fd9e925d676932a.d: examples/streaming_online.rs

/root/repo/target/debug/examples/streaming_online-3fd9e925d676932a: examples/streaming_online.rs

examples/streaming_online.rs:

/root/repo/target/debug/examples/mrc_cache_model-2f0b505530e9b917.d: examples/mrc_cache_model.rs Cargo.toml

/root/repo/target/debug/examples/libmrc_cache_model-2f0b505530e9b917.rmeta: examples/mrc_cache_model.rs Cargo.toml

examples/mrc_cache_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/libcrossbeam_channel.rlib: /root/repo/shims/crossbeam-channel/src/lib.rs

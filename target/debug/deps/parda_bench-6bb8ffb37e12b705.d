/root/repo/target/debug/deps/parda_bench-6bb8ffb37e12b705.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libparda_bench-6bb8ffb37e12b705.rmeta: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs Cargo.toml

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_trace-c480d2b6a63fdd2c.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

/root/repo/target/debug/deps/parda_trace-c480d2b6a63fdd2c: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/stream.rs:
crates/parda-trace/src/xform.rs:

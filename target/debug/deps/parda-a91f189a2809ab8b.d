/root/repo/target/debug/deps/parda-a91f189a2809ab8b.d: src/lib.rs

/root/repo/target/debug/deps/libparda-a91f189a2809ab8b.rlib: src/lib.rs

/root/repo/target/debug/deps/libparda-a91f189a2809ab8b.rmeta: src/lib.rs

src/lib.rs:

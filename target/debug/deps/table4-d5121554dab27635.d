/root/repo/target/debug/deps/table4-d5121554dab27635.d: crates/parda-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-d5121554dab27635: crates/parda-bench/src/bin/table4.rs

crates/parda-bench/src/bin/table4.rs:

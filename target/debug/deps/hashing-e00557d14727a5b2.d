/root/repo/target/debug/deps/hashing-e00557d14727a5b2.d: crates/parda-bench/benches/hashing.rs Cargo.toml

/root/repo/target/debug/deps/libhashing-e00557d14727a5b2.rmeta: crates/parda-bench/benches/hashing.rs Cargo.toml

crates/parda-bench/benches/hashing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5a-e2b14f13d08ff455.d: crates/parda-bench/src/bin/fig5a.rs Cargo.toml

/root/repo/target/debug/deps/libfig5a-e2b14f13d08ff455.rmeta: crates/parda-bench/src/bin/fig5a.rs Cargo.toml

crates/parda-bench/src/bin/fig5a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

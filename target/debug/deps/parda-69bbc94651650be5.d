/root/repo/target/debug/deps/parda-69bbc94651650be5.d: crates/parda-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparda-69bbc94651650be5.rmeta: crates/parda-cli/src/main.rs Cargo.toml

crates/parda-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_cli-ff33160f3cb8e010.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libparda_cli-ff33160f3cb8e010.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs Cargo.toml

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

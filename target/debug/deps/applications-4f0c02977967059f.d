/root/repo/target/debug/deps/applications-4f0c02977967059f.d: tests/applications.rs

/root/repo/target/debug/deps/applications-4f0c02977967059f: tests/applications.rs

tests/applications.rs:

/root/repo/target/debug/deps/parda_pinsim-53cc40351e412ea2.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-53cc40351e412ea2.rlib: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-53cc40351e412ea2.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

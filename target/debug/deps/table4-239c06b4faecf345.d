/root/repo/target/debug/deps/table4-239c06b4faecf345.d: crates/parda-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-239c06b4faecf345: crates/parda-bench/src/bin/table4.rs

crates/parda-bench/src/bin/table4.rs:

/root/repo/target/debug/deps/proptest-72d5dbf3f51578bd.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-72d5dbf3f51578bd.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-72d5dbf3f51578bd.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/debug/deps/proptest-9c61b99066cbf0c8.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-9c61b99066cbf0c8: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

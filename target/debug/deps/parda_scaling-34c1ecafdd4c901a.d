/root/repo/target/debug/deps/parda_scaling-34c1ecafdd4c901a.d: crates/parda-bench/benches/parda_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparda_scaling-34c1ecafdd4c901a.rmeta: crates/parda-bench/benches/parda_scaling.rs Cargo.toml

crates/parda-bench/benches/parda_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

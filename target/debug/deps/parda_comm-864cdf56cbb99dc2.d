/root/repo/target/debug/deps/parda_comm-864cdf56cbb99dc2.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-864cdf56cbb99dc2.rlib: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-864cdf56cbb99dc2.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

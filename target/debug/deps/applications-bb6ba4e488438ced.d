/root/repo/target/debug/deps/applications-bb6ba4e488438ced.d: tests/applications.rs Cargo.toml

/root/repo/target/debug/deps/libapplications-bb6ba4e488438ced.rmeta: tests/applications.rs Cargo.toml

tests/applications.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

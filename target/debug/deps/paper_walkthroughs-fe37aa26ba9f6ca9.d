/root/repo/target/debug/deps/paper_walkthroughs-fe37aa26ba9f6ca9.d: tests/paper_walkthroughs.rs

/root/repo/target/debug/deps/paper_walkthroughs-fe37aa26ba9f6ca9: tests/paper_walkthroughs.rs

tests/paper_walkthroughs.rs:

/root/repo/target/debug/deps/fig5a-7655bbd85c4237bf.d: crates/parda-bench/src/bin/fig5a.rs Cargo.toml

/root/repo/target/debug/deps/libfig5a-7655bbd85c4237bf.rmeta: crates/parda-bench/src/bin/fig5a.rs Cargo.toml

crates/parda-bench/src/bin/fig5a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

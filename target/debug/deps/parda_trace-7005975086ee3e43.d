/root/repo/target/debug/deps/parda_trace-7005975086ee3e43.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/xform.rs

/root/repo/target/debug/deps/parda_trace-7005975086ee3e43: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/xform.rs

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/xform.rs:

/root/repo/target/debug/deps/fig5b-4c805613ebc1bfb0.d: crates/parda-bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-4c805613ebc1bfb0: crates/parda-bench/src/bin/fig5b.rs

crates/parda-bench/src/bin/fig5b.rs:

/root/repo/target/debug/deps/parda_core-7fd114bcf438a351.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-7fd114bcf438a351.rlib: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-7fd114bcf438a351.rmeta: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:

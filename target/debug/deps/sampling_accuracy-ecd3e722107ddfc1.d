/root/repo/target/debug/deps/sampling_accuracy-ecd3e722107ddfc1.d: crates/parda-bench/src/bin/sampling_accuracy.rs

/root/repo/target/debug/deps/sampling_accuracy-ecd3e722107ddfc1: crates/parda-bench/src/bin/sampling_accuracy.rs

crates/parda-bench/src/bin/sampling_accuracy.rs:

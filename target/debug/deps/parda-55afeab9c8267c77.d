/root/repo/target/debug/deps/parda-55afeab9c8267c77.d: src/lib.rs

/root/repo/target/debug/deps/libparda-55afeab9c8267c77.rlib: src/lib.rs

/root/repo/target/debug/deps/libparda-55afeab9c8267c77.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/cross_engine-da73e2db3a22f481.d: tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-da73e2db3a22f481: tests/cross_engine.rs

tests/cross_engine.rs:

/root/repo/target/debug/deps/infinity_opt-f73707168f2095a0.d: crates/parda-bench/benches/infinity_opt.rs Cargo.toml

/root/repo/target/debug/deps/libinfinity_opt-f73707168f2095a0.rmeta: crates/parda-bench/benches/infinity_opt.rs Cargo.toml

crates/parda-bench/benches/infinity_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

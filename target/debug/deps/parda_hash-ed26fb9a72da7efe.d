/root/repo/target/debug/deps/parda_hash-ed26fb9a72da7efe.d: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

/root/repo/target/debug/deps/libparda_hash-ed26fb9a72da7efe.rlib: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

/root/repo/target/debug/deps/libparda_hash-ed26fb9a72da7efe.rmeta: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

crates/parda-hash/src/lib.rs:
crates/parda-hash/src/fx.rs:
crates/parda-hash/src/map.rs:
crates/parda-hash/src/table.rs:

/root/repo/target/debug/deps/trace_io-2ed19942d05a784d.d: crates/parda-bench/benches/trace_io.rs

/root/repo/target/debug/deps/trace_io-2ed19942d05a784d: crates/parda-bench/benches/trace_io.rs

crates/parda-bench/benches/trace_io.rs:

/root/repo/target/debug/deps/parda-84bba4c923189809.d: crates/parda-cli/src/main.rs

/root/repo/target/debug/deps/parda-84bba4c923189809: crates/parda-cli/src/main.rs

crates/parda-cli/src/main.rs:

/root/repo/target/debug/deps/stream-9d1689aa7fccf02c.d: crates/parda-cli/tests/stream.rs Cargo.toml

/root/repo/target/debug/deps/libstream-9d1689aa7fccf02c.rmeta: crates/parda-cli/tests/stream.rs Cargo.toml

crates/parda-cli/tests/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

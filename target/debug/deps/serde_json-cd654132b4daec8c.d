/root/repo/target/debug/deps/serde_json-cd654132b4daec8c.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-cd654132b4daec8c.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-cd654132b4daec8c.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

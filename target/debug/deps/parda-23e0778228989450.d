/root/repo/target/debug/deps/parda-23e0778228989450.d: crates/parda-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparda-23e0778228989450.rmeta: crates/parda-cli/src/main.rs Cargo.toml

crates/parda-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_hist-1f46230be770958b.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/debug/deps/parda_hist-1f46230be770958b: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:

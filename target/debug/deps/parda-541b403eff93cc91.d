/root/repo/target/debug/deps/parda-541b403eff93cc91.d: crates/parda-cli/src/main.rs

/root/repo/target/debug/deps/parda-541b403eff93cc91: crates/parda-cli/src/main.rs

crates/parda-cli/src/main.rs:

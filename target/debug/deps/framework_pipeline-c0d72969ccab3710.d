/root/repo/target/debug/deps/framework_pipeline-c0d72969ccab3710.d: tests/framework_pipeline.rs

/root/repo/target/debug/deps/framework_pipeline-c0d72969ccab3710: tests/framework_pipeline.rs

tests/framework_pipeline.rs:

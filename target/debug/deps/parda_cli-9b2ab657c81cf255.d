/root/repo/target/debug/deps/parda_cli-9b2ab657c81cf255.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-9b2ab657c81cf255.rlib: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-9b2ab657c81cf255.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

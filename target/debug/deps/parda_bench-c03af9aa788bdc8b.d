/root/repo/target/debug/deps/parda_bench-c03af9aa788bdc8b.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-c03af9aa788bdc8b.rlib: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-c03af9aa788bdc8b.rmeta: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

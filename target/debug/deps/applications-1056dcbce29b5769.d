/root/repo/target/debug/deps/applications-1056dcbce29b5769.d: tests/applications.rs

/root/repo/target/debug/deps/applications-1056dcbce29b5769: tests/applications.rs

tests/applications.rs:

/root/repo/target/debug/deps/fig5a-cde948fc98e46940.d: crates/parda-bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-cde948fc98e46940: crates/parda-bench/src/bin/fig5a.rs

crates/parda-bench/src/bin/fig5a.rs:

/root/repo/target/debug/deps/parda_hash-8498331659b12bfe.d: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

/root/repo/target/debug/deps/parda_hash-8498331659b12bfe: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs

crates/parda-hash/src/lib.rs:
crates/parda-hash/src/fx.rs:
crates/parda-hash/src/map.rs:
crates/parda-hash/src/table.rs:

/root/repo/target/debug/deps/parda-298f0e8c3323888d.d: crates/parda-cli/src/main.rs

/root/repo/target/debug/deps/parda-298f0e8c3323888d: crates/parda-cli/src/main.rs

crates/parda-cli/src/main.rs:

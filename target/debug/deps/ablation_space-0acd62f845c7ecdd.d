/root/repo/target/debug/deps/ablation_space-0acd62f845c7ecdd.d: crates/parda-bench/src/bin/ablation_space.rs

/root/repo/target/debug/deps/ablation_space-0acd62f845c7ecdd: crates/parda-bench/src/bin/ablation_space.rs

crates/parda-bench/src/bin/ablation_space.rs:

/root/repo/target/debug/deps/parda_core-58025d1cdf2b7e98.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-58025d1cdf2b7e98.rlib: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-58025d1cdf2b7e98.rmeta: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:

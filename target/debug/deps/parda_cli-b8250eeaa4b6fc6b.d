/root/repo/target/debug/deps/parda_cli-b8250eeaa4b6fc6b.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-b8250eeaa4b6fc6b.rlib: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-b8250eeaa4b6fc6b.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

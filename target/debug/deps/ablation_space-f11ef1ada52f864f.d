/root/repo/target/debug/deps/ablation_space-f11ef1ada52f864f.d: crates/parda-bench/src/bin/ablation_space.rs

/root/repo/target/debug/deps/ablation_space-f11ef1ada52f864f: crates/parda-bench/src/bin/ablation_space.rs

crates/parda-bench/src/bin/ablation_space.rs:

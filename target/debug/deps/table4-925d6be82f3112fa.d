/root/repo/target/debug/deps/table4-925d6be82f3112fa.d: crates/parda-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-925d6be82f3112fa: crates/parda-bench/src/bin/table4.rs

crates/parda-bench/src/bin/table4.rs:

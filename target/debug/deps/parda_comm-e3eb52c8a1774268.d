/root/repo/target/debug/deps/parda_comm-e3eb52c8a1774268.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-e3eb52c8a1774268.rlib: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-e3eb52c8a1774268.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

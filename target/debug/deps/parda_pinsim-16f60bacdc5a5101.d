/root/repo/target/debug/deps/parda_pinsim-16f60bacdc5a5101.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/parda_pinsim-16f60bacdc5a5101: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

/root/repo/target/debug/deps/stream-7ee14f3a4e73ec1d.d: crates/parda-cli/tests/stream.rs

/root/repo/target/debug/deps/stream-7ee14f3a4e73ec1d: crates/parda-cli/tests/stream.rs

crates/parda-cli/tests/stream.rs:

/root/repo/target/debug/deps/fig5b-5f0b02c7c3ea9468.d: crates/parda-bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-5f0b02c7c3ea9468.rmeta: crates/parda-bench/src/bin/fig5b.rs Cargo.toml

crates/parda-bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_tree-b3da6f800717634e.d: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

/root/repo/target/debug/deps/parda_tree-b3da6f800717634e: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

crates/parda-tree/src/lib.rs:
crates/parda-tree/src/avl.rs:
crates/parda-tree/src/fenwick.rs:
crates/parda-tree/src/naive.rs:
crates/parda-tree/src/splay.rs:
crates/parda-tree/src/treap.rs:
crates/parda-tree/src/vector.rs:

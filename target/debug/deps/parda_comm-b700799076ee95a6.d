/root/repo/target/debug/deps/parda_comm-b700799076ee95a6.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/parda_comm-b700799076ee95a6: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

/root/repo/target/debug/deps/parda_cachesim-4bb0381d24b24bca.d: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

/root/repo/target/debug/deps/libparda_cachesim-4bb0381d24b24bca.rlib: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

/root/repo/target/debug/deps/libparda_cachesim-4bb0381d24b24bca.rmeta: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

crates/parda-cachesim/src/lib.rs:
crates/parda-cachesim/src/lru.rs:
crates/parda-cachesim/src/plru.rs:
crates/parda-cachesim/src/set_assoc.rs:

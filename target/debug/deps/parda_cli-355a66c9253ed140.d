/root/repo/target/debug/deps/parda_cli-355a66c9253ed140.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/parda_cli-355a66c9253ed140: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

/root/repo/target/debug/deps/parda_cachesim-63d826bd1200194a.d: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs Cargo.toml

/root/repo/target/debug/deps/libparda_cachesim-63d826bd1200194a.rmeta: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs Cargo.toml

crates/parda-cachesim/src/lib.rs:
crates/parda-cachesim/src/lru.rs:
crates/parda-cachesim/src/plru.rs:
crates/parda-cachesim/src/set_assoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

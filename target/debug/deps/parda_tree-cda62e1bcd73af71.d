/root/repo/target/debug/deps/parda_tree-cda62e1bcd73af71.d: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

/root/repo/target/debug/deps/libparda_tree-cda62e1bcd73af71.rlib: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

/root/repo/target/debug/deps/libparda_tree-cda62e1bcd73af71.rmeta: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs

crates/parda-tree/src/lib.rs:
crates/parda-tree/src/avl.rs:
crates/parda-tree/src/fenwick.rs:
crates/parda-tree/src/naive.rs:
crates/parda-tree/src/splay.rs:
crates/parda-tree/src/treap.rs:
crates/parda-tree/src/vector.rs:

/root/repo/target/debug/deps/parda_pinsim-92e89456f5ce7a8d.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-92e89456f5ce7a8d.rlib: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-92e89456f5ce7a8d.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

/root/repo/target/debug/deps/parda_bench-80e84dbdefd37b23.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/parda_bench-80e84dbdefd37b23: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

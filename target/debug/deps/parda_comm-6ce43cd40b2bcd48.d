/root/repo/target/debug/deps/parda_comm-6ce43cd40b2bcd48.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs Cargo.toml

/root/repo/target/debug/deps/libparda_comm-6ce43cd40b2bcd48.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs Cargo.toml

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

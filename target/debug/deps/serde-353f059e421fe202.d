/root/repo/target/debug/deps/serde-353f059e421fe202.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-353f059e421fe202.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-353f059e421fe202.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

/root/repo/target/debug/deps/fig4-852c965d8a078021.d: crates/parda-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-852c965d8a078021: crates/parda-bench/src/bin/fig4.rs

crates/parda-bench/src/bin/fig4.rs:

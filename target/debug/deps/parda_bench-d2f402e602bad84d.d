/root/repo/target/debug/deps/parda_bench-d2f402e602bad84d.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-d2f402e602bad84d.rlib: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-d2f402e602bad84d.rmeta: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

/root/repo/target/debug/deps/parda-0c2a1c26e67cbf27.d: src/lib.rs

/root/repo/target/debug/deps/parda-0c2a1c26e67cbf27: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/table4-acc28f2c29cb1e6f.d: crates/parda-bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-acc28f2c29cb1e6f.rmeta: crates/parda-bench/src/bin/table4.rs Cargo.toml

crates/parda-bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

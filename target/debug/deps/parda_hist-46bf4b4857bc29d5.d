/root/repo/target/debug/deps/parda_hist-46bf4b4857bc29d5.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/debug/deps/libparda_hist-46bf4b4857bc29d5.rlib: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/debug/deps/libparda_hist-46bf4b4857bc29d5.rmeta: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:

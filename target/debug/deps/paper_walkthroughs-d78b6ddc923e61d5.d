/root/repo/target/debug/deps/paper_walkthroughs-d78b6ddc923e61d5.d: tests/paper_walkthroughs.rs

/root/repo/target/debug/deps/paper_walkthroughs-d78b6ddc923e61d5: tests/paper_walkthroughs.rs

tests/paper_walkthroughs.rs:

/root/repo/target/debug/deps/sampling_accuracy-a0103bfb8e5c8707.d: crates/parda-bench/src/bin/sampling_accuracy.rs

/root/repo/target/debug/deps/sampling_accuracy-a0103bfb8e5c8707: crates/parda-bench/src/bin/sampling_accuracy.rs

crates/parda-bench/src/bin/sampling_accuracy.rs:

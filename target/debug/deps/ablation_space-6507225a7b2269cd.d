/root/repo/target/debug/deps/ablation_space-6507225a7b2269cd.d: crates/parda-bench/src/bin/ablation_space.rs Cargo.toml

/root/repo/target/debug/deps/libablation_space-6507225a7b2269cd.rmeta: crates/parda-bench/src/bin/ablation_space.rs Cargo.toml

crates/parda-bench/src/bin/ablation_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

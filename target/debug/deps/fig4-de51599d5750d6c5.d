/root/repo/target/debug/deps/fig4-de51599d5750d6c5.d: crates/parda-bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-de51599d5750d6c5.rmeta: crates/parda-bench/src/bin/fig4.rs Cargo.toml

crates/parda-bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_comm-e63f59117976db03.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-e63f59117976db03.rlib: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/libparda_comm-e63f59117976db03.rmeta: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

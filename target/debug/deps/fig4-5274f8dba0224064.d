/root/repo/target/debug/deps/fig4-5274f8dba0224064.d: crates/parda-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-5274f8dba0224064: crates/parda-bench/src/bin/fig4.rs

crates/parda-bench/src/bin/fig4.rs:

/root/repo/target/debug/deps/parda_pinsim-a49cd240b66eaed7.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-a49cd240b66eaed7.rlib: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/libparda_pinsim-a49cd240b66eaed7.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

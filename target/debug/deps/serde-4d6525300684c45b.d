/root/repo/target/debug/deps/serde-4d6525300684c45b.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-4d6525300684c45b.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

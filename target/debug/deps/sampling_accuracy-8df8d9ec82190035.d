/root/repo/target/debug/deps/sampling_accuracy-8df8d9ec82190035.d: crates/parda-bench/src/bin/sampling_accuracy.rs

/root/repo/target/debug/deps/sampling_accuracy-8df8d9ec82190035: crates/parda-bench/src/bin/sampling_accuracy.rs

crates/parda-bench/src/bin/sampling_accuracy.rs:

/root/repo/target/debug/deps/parda_cli-303a5b3f91c8feca.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/parda_cli-303a5b3f91c8feca: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

/root/repo/target/debug/deps/trace_io-c9dd18ea213967a6.d: crates/parda-bench/benches/trace_io.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_io-c9dd18ea213967a6.rmeta: crates/parda-bench/benches/trace_io.rs Cargo.toml

crates/parda-bench/benches/trace_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda-c493203a0aa45a1e.d: crates/parda-cli/src/main.rs

/root/repo/target/debug/deps/parda-c493203a0aa45a1e: crates/parda-cli/src/main.rs

crates/parda-cli/src/main.rs:

/root/repo/target/debug/deps/serde_json-6db7fcafe18a3157.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-6db7fcafe18a3157: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

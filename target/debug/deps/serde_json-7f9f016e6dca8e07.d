/root/repo/target/debug/deps/serde_json-7f9f016e6dca8e07.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7f9f016e6dca8e07.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7f9f016e6dca8e07.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

/root/repo/target/debug/deps/sampling_accuracy-1a693312970f3176.d: crates/parda-bench/src/bin/sampling_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libsampling_accuracy-1a693312970f3176.rmeta: crates/parda-bench/src/bin/sampling_accuracy.rs Cargo.toml

crates/parda-bench/src/bin/sampling_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

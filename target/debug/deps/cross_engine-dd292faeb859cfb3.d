/root/repo/target/debug/deps/cross_engine-dd292faeb859cfb3.d: tests/cross_engine.rs Cargo.toml

/root/repo/target/debug/deps/libcross_engine-dd292faeb859cfb3.rmeta: tests/cross_engine.rs Cargo.toml

tests/cross_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

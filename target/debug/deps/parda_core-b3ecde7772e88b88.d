/root/repo/target/debug/deps/parda_core-b3ecde7772e88b88.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/parda_core-b3ecde7772e88b88: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:

/root/repo/target/debug/deps/fig4-81fff27b22037470.d: crates/parda-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-81fff27b22037470: crates/parda-bench/src/bin/fig4.rs

crates/parda-bench/src/bin/fig4.rs:

/root/repo/target/debug/deps/parda_trace-d685e046a1719578.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs Cargo.toml

/root/repo/target/debug/deps/libparda_trace-d685e046a1719578.rmeta: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs Cargo.toml

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/stream.rs:
crates/parda-trace/src/xform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

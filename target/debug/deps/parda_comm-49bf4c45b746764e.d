/root/repo/target/debug/deps/parda_comm-49bf4c45b746764e.d: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

/root/repo/target/debug/deps/parda_comm-49bf4c45b746764e: crates/parda-comm/src/lib.rs crates/parda-comm/src/collectives.rs crates/parda-comm/src/pipe.rs

crates/parda-comm/src/lib.rs:
crates/parda-comm/src/collectives.rs:
crates/parda-comm/src/pipe.rs:

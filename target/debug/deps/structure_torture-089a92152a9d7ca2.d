/root/repo/target/debug/deps/structure_torture-089a92152a9d7ca2.d: tests/structure_torture.rs Cargo.toml

/root/repo/target/debug/deps/libstructure_torture-089a92152a9d7ca2.rmeta: tests/structure_torture.rs Cargo.toml

tests/structure_torture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

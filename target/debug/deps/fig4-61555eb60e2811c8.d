/root/repo/target/debug/deps/fig4-61555eb60e2811c8.d: crates/parda-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-61555eb60e2811c8: crates/parda-bench/src/bin/fig4.rs

crates/parda-bench/src/bin/fig4.rs:

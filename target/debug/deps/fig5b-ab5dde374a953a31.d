/root/repo/target/debug/deps/fig5b-ab5dde374a953a31.d: crates/parda-bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-ab5dde374a953a31: crates/parda-bench/src/bin/fig5b.rs

crates/parda-bench/src/bin/fig5b.rs:

/root/repo/target/debug/deps/fig5b-b49e653fb3d0634d.d: crates/parda-bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-b49e653fb3d0634d: crates/parda-bench/src/bin/fig5b.rs

crates/parda-bench/src/bin/fig5b.rs:

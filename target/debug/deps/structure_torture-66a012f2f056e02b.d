/root/repo/target/debug/deps/structure_torture-66a012f2f056e02b.d: tests/structure_torture.rs

/root/repo/target/debug/deps/structure_torture-66a012f2f056e02b: tests/structure_torture.rs

tests/structure_torture.rs:

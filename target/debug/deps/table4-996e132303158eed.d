/root/repo/target/debug/deps/table4-996e132303158eed.d: crates/parda-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-996e132303158eed: crates/parda-bench/src/bin/table4.rs

crates/parda-bench/src/bin/table4.rs:

/root/repo/target/debug/deps/parda-d3c1864fd9e32c48.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparda-d3c1864fd9e32c48.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5b-6c13d5e4bea62d9e.d: crates/parda-bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-6c13d5e4bea62d9e: crates/parda-bench/src/bin/fig5b.rs

crates/parda-bench/src/bin/fig5b.rs:

/root/repo/target/debug/deps/framework_pipeline-294543c03493018f.d: tests/framework_pipeline.rs

/root/repo/target/debug/deps/framework_pipeline-294543c03493018f: tests/framework_pipeline.rs

tests/framework_pipeline.rs:

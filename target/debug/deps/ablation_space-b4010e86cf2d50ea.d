/root/repo/target/debug/deps/ablation_space-b4010e86cf2d50ea.d: crates/parda-bench/src/bin/ablation_space.rs

/root/repo/target/debug/deps/ablation_space-b4010e86cf2d50ea: crates/parda-bench/src/bin/ablation_space.rs

crates/parda-bench/src/bin/ablation_space.rs:

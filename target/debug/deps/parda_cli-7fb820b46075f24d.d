/root/repo/target/debug/deps/parda_cli-7fb820b46075f24d.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libparda_cli-7fb820b46075f24d.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs Cargo.toml

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

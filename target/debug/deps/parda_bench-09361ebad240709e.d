/root/repo/target/debug/deps/parda_bench-09361ebad240709e.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-09361ebad240709e.rlib: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/libparda_bench-09361ebad240709e.rmeta: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

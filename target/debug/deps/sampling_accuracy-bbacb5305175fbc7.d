/root/repo/target/debug/deps/sampling_accuracy-bbacb5305175fbc7.d: crates/parda-bench/src/bin/sampling_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libsampling_accuracy-bbacb5305175fbc7.rmeta: crates/parda-bench/src/bin/sampling_accuracy.rs Cargo.toml

crates/parda-bench/src/bin/sampling_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

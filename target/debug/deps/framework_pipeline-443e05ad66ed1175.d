/root/repo/target/debug/deps/framework_pipeline-443e05ad66ed1175.d: tests/framework_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libframework_pipeline-443e05ad66ed1175.rmeta: tests/framework_pipeline.rs Cargo.toml

tests/framework_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_hist-5df64ee6b8d95ad5.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs Cargo.toml

/root/repo/target/debug/deps/libparda_hist-5df64ee6b8d95ad5.rmeta: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs Cargo.toml

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_pinsim-1eae95df492715b4.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

/root/repo/target/debug/deps/parda_pinsim-1eae95df492715b4: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:

/root/repo/target/debug/deps/table4-b4be47ebab8b9419.d: crates/parda-bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-b4be47ebab8b9419.rmeta: crates/parda-bench/src/bin/table4.rs Cargo.toml

crates/parda-bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5b-e3076f50f01d57e9.d: crates/parda-bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-e3076f50f01d57e9.rmeta: crates/parda-bench/src/bin/fig5b.rs Cargo.toml

crates/parda-bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

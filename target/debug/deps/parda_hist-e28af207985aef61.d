/root/repo/target/debug/deps/parda_hist-e28af207985aef61.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs Cargo.toml

/root/repo/target/debug/deps/libparda_hist-e28af207985aef61.rmeta: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs Cargo.toml

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda-ff482880bc134e22.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparda-ff482880bc134e22.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

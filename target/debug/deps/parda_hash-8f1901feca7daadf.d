/root/repo/target/debug/deps/parda_hash-8f1901feca7daadf.d: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libparda_hash-8f1901feca7daadf.rmeta: crates/parda-hash/src/lib.rs crates/parda-hash/src/fx.rs crates/parda-hash/src/map.rs crates/parda-hash/src/table.rs Cargo.toml

crates/parda-hash/src/lib.rs:
crates/parda-hash/src/fx.rs:
crates/parda-hash/src/map.rs:
crates/parda-hash/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig4-e9c8d7e3cc29b921.d: crates/parda-bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e9c8d7e3cc29b921.rmeta: crates/parda-bench/src/bin/fig4.rs Cargo.toml

crates/parda-bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_core-ff2b25a21f5fc3b0.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libparda_core-ff2b25a21f5fc3b0.rmeta: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs Cargo.toml

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

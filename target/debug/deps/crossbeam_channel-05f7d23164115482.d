/root/repo/target/debug/deps/crossbeam_channel-05f7d23164115482.d: shims/crossbeam-channel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam_channel-05f7d23164115482.rmeta: shims/crossbeam-channel/src/lib.rs Cargo.toml

shims/crossbeam-channel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

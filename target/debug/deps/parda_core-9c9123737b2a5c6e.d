/root/repo/target/debug/deps/parda_core-9c9123737b2a5c6e.d: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-9c9123737b2a5c6e.rlib: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

/root/repo/target/debug/deps/libparda_core-9c9123737b2a5c6e.rmeta: crates/parda-core/src/lib.rs crates/parda-core/src/engine.rs crates/parda-core/src/object.rs crates/parda-core/src/parallel.rs crates/parda-core/src/phased.rs crates/parda-core/src/sampled.rs crates/parda-core/src/seq.rs crates/parda-core/src/shared.rs crates/parda-core/src/window.rs

crates/parda-core/src/lib.rs:
crates/parda-core/src/engine.rs:
crates/parda-core/src/object.rs:
crates/parda-core/src/parallel.rs:
crates/parda-core/src/phased.rs:
crates/parda-core/src/sampled.rs:
crates/parda-core/src/seq.rs:
crates/parda-core/src/shared.rs:
crates/parda-core/src/window.rs:

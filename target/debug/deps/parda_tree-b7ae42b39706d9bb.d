/root/repo/target/debug/deps/parda_tree-b7ae42b39706d9bb.d: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libparda_tree-b7ae42b39706d9bb.rmeta: crates/parda-tree/src/lib.rs crates/parda-tree/src/avl.rs crates/parda-tree/src/fenwick.rs crates/parda-tree/src/naive.rs crates/parda-tree/src/splay.rs crates/parda-tree/src/treap.rs crates/parda-tree/src/vector.rs Cargo.toml

crates/parda-tree/src/lib.rs:
crates/parda-tree/src/avl.rs:
crates/parda-tree/src/fenwick.rs:
crates/parda-tree/src/naive.rs:
crates/parda-tree/src/splay.rs:
crates/parda-tree/src/treap.rs:
crates/parda-tree/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5a-64febd7375103828.d: crates/parda-bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-64febd7375103828: crates/parda-bench/src/bin/fig5a.rs

crates/parda-bench/src/bin/fig5a.rs:

/root/repo/target/debug/deps/paper_walkthroughs-2ed418de8f0d154f.d: tests/paper_walkthroughs.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_walkthroughs-2ed418de8f0d154f.rmeta: tests/paper_walkthroughs.rs Cargo.toml

tests/paper_walkthroughs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

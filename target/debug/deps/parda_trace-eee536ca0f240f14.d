/root/repo/target/debug/deps/parda_trace-eee536ca0f240f14.d: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

/root/repo/target/debug/deps/libparda_trace-eee536ca0f240f14.rlib: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

/root/repo/target/debug/deps/libparda_trace-eee536ca0f240f14.rmeta: crates/parda-trace/src/lib.rs crates/parda-trace/src/alias.rs crates/parda-trace/src/gen.rs crates/parda-trace/src/io.rs crates/parda-trace/src/lru_stack.rs crates/parda-trace/src/spec.rs crates/parda-trace/src/stats.rs crates/parda-trace/src/stream.rs crates/parda-trace/src/xform.rs

crates/parda-trace/src/lib.rs:
crates/parda-trace/src/alias.rs:
crates/parda-trace/src/gen.rs:
crates/parda-trace/src/io.rs:
crates/parda-trace/src/lru_stack.rs:
crates/parda-trace/src/spec.rs:
crates/parda-trace/src/stats.rs:
crates/parda-trace/src/stream.rs:
crates/parda-trace/src/xform.rs:

/root/repo/target/debug/deps/parda_bench-a9fd849180a02cfa.d: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

/root/repo/target/debug/deps/parda_bench-a9fd849180a02cfa: crates/parda-bench/src/lib.rs crates/parda-bench/src/report.rs crates/parda-bench/src/workload.rs

crates/parda-bench/src/lib.rs:
crates/parda-bench/src/report.rs:
crates/parda-bench/src/workload.rs:

/root/repo/target/debug/deps/parda-3fc4fde5d134f200.d: src/lib.rs

/root/repo/target/debug/deps/parda-3fc4fde5d134f200: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/fig5a-eb872d9b0bbf5bac.d: crates/parda-bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-eb872d9b0bbf5bac: crates/parda-bench/src/bin/fig5a.rs

crates/parda-bench/src/bin/fig5a.rs:

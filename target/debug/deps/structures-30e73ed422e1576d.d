/root/repo/target/debug/deps/structures-30e73ed422e1576d.d: crates/parda-bench/benches/structures.rs Cargo.toml

/root/repo/target/debug/deps/libstructures-30e73ed422e1576d.rmeta: crates/parda-bench/benches/structures.rs Cargo.toml

crates/parda-bench/benches/structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda-a92be8b89cec5c20.d: src/lib.rs

/root/repo/target/debug/deps/libparda-a92be8b89cec5c20.rlib: src/lib.rs

/root/repo/target/debug/deps/libparda-a92be8b89cec5c20.rmeta: src/lib.rs

src/lib.rs:

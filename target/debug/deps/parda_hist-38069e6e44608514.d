/root/repo/target/debug/deps/parda_hist-38069e6e44608514.d: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/debug/deps/libparda_hist-38069e6e44608514.rlib: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

/root/repo/target/debug/deps/libparda_hist-38069e6e44608514.rmeta: crates/parda-hist/src/lib.rs crates/parda-hist/src/binned.rs crates/parda-hist/src/hierarchy.rs crates/parda-hist/src/histogram.rs

crates/parda-hist/src/lib.rs:
crates/parda-hist/src/binned.rs:
crates/parda-hist/src/hierarchy.rs:
crates/parda-hist/src/histogram.rs:

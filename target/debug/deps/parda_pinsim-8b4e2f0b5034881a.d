/root/repo/target/debug/deps/parda_pinsim-8b4e2f0b5034881a.d: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs Cargo.toml

/root/repo/target/debug/deps/libparda_pinsim-8b4e2f0b5034881a.rmeta: crates/parda-pinsim/src/lib.rs crates/parda-pinsim/src/programs.rs Cargo.toml

crates/parda-pinsim/src/lib.rs:
crates/parda-pinsim/src/programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parda_cachesim-da1e8513acc64678.d: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

/root/repo/target/debug/deps/parda_cachesim-da1e8513acc64678: crates/parda-cachesim/src/lib.rs crates/parda-cachesim/src/lru.rs crates/parda-cachesim/src/plru.rs crates/parda-cachesim/src/set_assoc.rs

crates/parda-cachesim/src/lib.rs:
crates/parda-cachesim/src/lru.rs:
crates/parda-cachesim/src/plru.rs:
crates/parda-cachesim/src/set_assoc.rs:

/root/repo/target/debug/deps/ablation_space-91c514f5ae0fe155.d: crates/parda-bench/src/bin/ablation_space.rs

/root/repo/target/debug/deps/ablation_space-91c514f5ae0fe155: crates/parda-bench/src/bin/ablation_space.rs

crates/parda-bench/src/bin/ablation_space.rs:

/root/repo/target/debug/deps/cross_engine-2e9c8f3928ecd22f.d: tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-2e9c8f3928ecd22f: tests/cross_engine.rs

tests/cross_engine.rs:

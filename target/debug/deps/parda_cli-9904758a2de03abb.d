/root/repo/target/debug/deps/parda_cli-9904758a2de03abb.d: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-9904758a2de03abb.rlib: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

/root/repo/target/debug/deps/libparda_cli-9904758a2de03abb.rmeta: crates/parda-cli/src/lib.rs crates/parda-cli/src/args.rs crates/parda-cli/src/commands.rs

crates/parda-cli/src/lib.rs:
crates/parda-cli/src/args.rs:
crates/parda-cli/src/commands.rs:

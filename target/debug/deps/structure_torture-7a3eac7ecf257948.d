/root/repo/target/debug/deps/structure_torture-7a3eac7ecf257948.d: tests/structure_torture.rs

/root/repo/target/debug/deps/structure_torture-7a3eac7ecf257948: tests/structure_torture.rs

tests/structure_torture.rs:

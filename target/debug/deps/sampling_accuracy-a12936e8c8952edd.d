/root/repo/target/debug/deps/sampling_accuracy-a12936e8c8952edd.d: crates/parda-bench/src/bin/sampling_accuracy.rs

/root/repo/target/debug/deps/sampling_accuracy-a12936e8c8952edd: crates/parda-bench/src/bin/sampling_accuracy.rs

crates/parda-bench/src/bin/sampling_accuracy.rs:

/root/repo/target/debug/deps/fig5a-a806975c744991fe.d: crates/parda-bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-a806975c744991fe: crates/parda-bench/src/bin/fig5a.rs

crates/parda-bench/src/bin/fig5a.rs:

//! # parda
//!
//! A fast parallel reuse distance analysis library — a from-scratch Rust
//! reproduction of *PARDA: A Fast Parallel Reuse Distance Analysis
//! Algorithm* (Niu, Dinan, Lu, Sadayappan — IPDPS 2012).
//!
//! Reuse distance (LRU stack distance) is the number of distinct addresses
//! referenced between two successive accesses to the same address. One pass
//! of reuse-distance analysis predicts hit/miss behaviour for *every* fully
//! associative LRU cache size at once; PARDA is the first algorithm to
//! compute it exactly in parallel from a single trace.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the analyzers: sequential (Algorithm 1), parallel
//!   (Algorithms 3–4), streaming multi-phase (Algorithms 5–6), and bounded
//!   (Algorithm 7);
//! * [`trace`] — trace types, generators, SPEC CPU2006 workload models, and
//!   the binary trace format;
//! * [`tree`] — the distance-augmented search structures (splay/AVL/treap)
//!   and the naïve stack;
//! * [`hist`] — reuse-distance histograms and miss-ratio curves;
//! * [`hash`] — the Robin Hood hash-table substrate;
//! * [`obs`] — observability: counters, stopwatches, and the per-rank
//!   analysis [`Report`](obs::Report) behind `--stats`;
//! * [`comm`] — the rank/message-passing substrate standing in for MPI;
//! * [`cachesim`] — LRU cache simulators (validation ground truth);
//! * [`pinsim`] — synthetic instrumented programs standing in for Pin.
//!
//! # Quick start
//!
//! ```
//! use parda::prelude::*;
//!
//! // Generate a workload modeled on SPEC CPU2006 `mcf`, scaled down.
//! let bench = SpecBenchmark::by_name("mcf").unwrap();
//! let trace = bench.generator(100_000, 42).take_trace(100_000);
//!
//! // Analyze it in parallel with 4 ranks, collecting the per-rank
//! // observability report.
//! let (hist, report) = Analysis::new().ranks(4).stats(true).run(trace.as_slice());
//!
//! // Exactly equal to the sequential analysis...
//! assert_eq!(hist, analyze_sequential::<SplayTree>(trace.as_slice(), None));
//! // ...and it predicts LRU cache behaviour exactly.
//! let mut cache = LruCache::new(4096);
//! assert_eq!(hist.hit_count(4096), cache.run_trace(trace.as_slice()).hits);
//! // The report breaks the run down per rank (chunk vs cascade time).
//! assert_eq!(report.unwrap().total_rank_refs(), 100_000);
//! ```

pub use parda_cachesim as cachesim;
pub use parda_comm as comm;
pub use parda_core as core;
pub use parda_hash as hash;
pub use parda_hist as hist;
pub use parda_obs as obs;
pub use parda_pinsim as pinsim;
pub use parda_trace as trace;
pub use parda_tree as tree;

/// The most common imports in one place.
pub mod prelude {
    pub use parda_cachesim::{CacheStats, LruCache, PlruCache, SetAssociativeCache};
    pub use parda_core::approx::{analyze_approx, ApproxMode, ApproxSketch, SampleRate};
    pub use parda_core::concurrent::{
        analyze_concurrent, analyze_concurrent_kind, default_granularity, interleave_threads,
        recommend_partition, shared_metrics, ConcurrentAnalysis, InterleaveModel, PartitionPlan,
    };
    pub use parda_core::object::{analyze_by_region, RegionAnalysis, RegionMap};
    pub use parda_core::parallel::{parda_msg, parda_threads, parda_threads_faulted};
    pub use parda_core::phased::{parda_phased, parda_phased_with, Reduction};
    pub use parda_core::seq::{analyze_naive, analyze_sequential, SequentialAnalyzer};
    pub use parda_core::{
        Analysis, Degradation, Engine, FaultPolicy, MissSink, Mode, PardaConfig, PardaError, Report,
    };
    pub use parda_hist::{BinnedHistogram, CacheHierarchy, CacheLevel, Distance, ReuseHistogram};
    pub use parda_trace::gen::{ReuseProfile, StackDistGen};
    pub use parda_trace::spec::{SpecBenchmark, SPEC2006};
    pub use parda_trace::{Addr, AddressStream, SliceStream, Trace};
    pub use parda_tree::{AvlTree, NaiveStack, ReuseTree, SplayTree, Treap, TreeKind, VectorTree};
}

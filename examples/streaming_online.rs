//! The full online-analysis framework of the paper's Figure 3:
//!
//! ```text
//!   instrumented program --trace--> pipe --> rank 0 --chunks--> ranks 1..np
//!                                                 \--- merge ---/
//! ```
//!
//! A pinsim kernel (standing in for a Pin-instrumented benchmark) streams
//! its references through a bounded pipe; the multi-phase Parda analyzer
//! (Algorithms 5–6) consumes the stream in phases, so analysis runs
//! concurrently with trace generation and memory stays bounded even for
//! endless traces.
//!
//! Run with: `cargo run --release --example streaming_online`

use parda::pinsim::{collect_trace, run_through_pipe, MergeSortScan};
use parda::prelude::*;

fn main() {
    let program = MergeSortScan::new(50_000, 11);
    let expected_refs = {
        // For the wrap-up comparison, also materialize the trace offline.
        collect_trace(program.clone())
    };
    println!(
        "program: mergesort over 50k keys ({} references)",
        expected_refs.len()
    );

    // Pin → pipe: 64 Kw pipe, like the paper's 64 Mw scaled down.
    let reader = run_through_pipe(program, 64 * 1024);

    // Pipe → phased Parda: 4 ranks, 8k references per rank per phase.
    let config = PardaConfig::with_ranks(4);
    let start = std::time::Instant::now();
    let hist = parda_phased::<SplayTree, _>(reader, 8_192, &config);
    let elapsed = start.elapsed();

    println!(
        "online analysis: {} references in {:.1} ms ({:.1} Mrefs/s)",
        hist.total(),
        elapsed.as_secs_f64() * 1e3,
        hist.total() as f64 / elapsed.as_secs_f64() / 1e6
    );
    print!("{}", hist.to_binned().render());

    // The streaming result is exactly the offline result.
    let offline = analyze_sequential::<SplayTree>(expected_refs.as_slice(), None);
    assert_eq!(hist, offline, "streaming must equal offline analysis");
    println!("validated: streaming histogram equals offline analysis");
}

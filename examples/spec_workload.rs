//! Sweep the SPEC CPU2006 workload models (the paper's Table IV
//! benchmarks, scaled) and report each one's locality profile: footprint,
//! mean reuse distance, and predicted miss ratios at three cache sizes.
//!
//! Run with: `cargo run --release --example spec_workload [refs-per-benchmark]`

use parda::prelude::*;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    // Cache sizes are footprint-relative (M/8, M/2, 2M): the scaled traces
    // have footprints from tens to thousands of addresses, so absolute
    // capacities would either always fit or never fit.
    println!(
        "{:<12} {:>9} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "benchmark", "N", "M", "mean_dist", "mr@M/8", "mr@M/2", "mr@2M"
    );
    let config = PardaConfig::with_ranks(4);
    for bench in &SPEC2006 {
        let trace = bench.generator(n, 1).take_trace(n as usize);
        let hist = parda_threads::<SplayTree>(trace.as_slice(), &config);
        let m = hist.infinite(); // first touches = distinct addresses
        println!(
            "{:<12} {:>9} {:>9} {:>11.1} {:>9.3} {:>9.3} {:>9.3}",
            bench.name,
            hist.total(),
            m,
            hist.mean_finite_distance().unwrap_or(0.0),
            hist.miss_ratio((m / 8).max(1)),
            hist.miss_ratio((m / 2).max(1)),
            hist.miss_ratio(2 * m),
        );
    }
    println!(
        "\nEach row is a scaled stand-in for the paper's trace: the M/N ratio \
         matches Table IV and the distance mixture matches the benchmark's \
         locality class (see parda_trace::spec). Streaming workloads (milc, \
         lbm) stay near their cold-miss floor only once the cache covers the \
         footprint (mr@M/2 still high); small-footprint and blocked ones \
         (povray, namd, dealII) drop at a fraction of the footprint."
    );
}

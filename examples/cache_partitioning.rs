//! Cache partitioning from reuse-distance profiles — the online application
//! the paper's introduction motivates ("cache sharing and partitioning",
//! Lu et al.'s Soft-OLP line of work).
//!
//! Two programs share a last-level cache. From each program's miss-ratio
//! curve (one reuse-distance pass each), we pick the way-partition that
//! minimizes total misses, and validate the choice by simulating the
//! partitioned caches directly.
//!
//! Run with: `cargo run --release --example cache_partitioning`

use parda::pinsim::{collect_trace, MatMul, PointerChase};
use parda::prelude::*;

/// Total predicted misses when program A gets `c_a` lines and B the rest.
fn predicted_misses(a: &ReuseHistogram, b: &ReuseHistogram, c_a: u64, total: u64) -> u64 {
    a.miss_count(c_a) + b.miss_count(total - c_a)
}

fn main() {
    // Program A: tiled matmul — strong reuse, benefits from modest capacity.
    let trace_a = collect_trace(MatMul::blocked(32, 8));
    // Program B: pointer chasing over a big footprint — cache-hostile until
    // the whole cycle fits.
    let trace_b = collect_trace(PointerChase::new(3_000, 300_000, 5));

    let cfg = PardaConfig::with_ranks(4);
    let hist_a = parda_threads::<SplayTree>(trace_a.as_slice(), &cfg);
    let hist_b = parda_threads::<SplayTree>(trace_b.as_slice(), &cfg);
    println!(
        "program A (tiled matmul): N={} M={}",
        hist_a.total(),
        trace_a.distinct()
    );
    println!(
        "program B (pointer chase): N={} M={}",
        hist_b.total(),
        trace_b.distinct()
    );

    let shared_capacity = 4_096u64;
    let granularity = 64u64; // partition in 64-line "ways"

    // Sweep every partition point and pick the predicted optimum.
    let mut best = (granularity, u64::MAX);
    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "A lines", "A misses", "B misses", "total"
    );
    let mut c_a = granularity;
    while c_a < shared_capacity {
        let ma = hist_a.miss_count(c_a);
        let mb = hist_b.miss_count(shared_capacity - c_a);
        if (c_a / granularity) % 8 == 1 {
            println!("{c_a:>8} {ma:>12} {mb:>12} {:>12}", ma + mb);
        }
        if ma + mb < best.1 {
            best = (c_a, ma + mb);
        }
        c_a += granularity;
    }
    let (best_a, best_total) = best;
    let even = predicted_misses(&hist_a, &hist_b, shared_capacity / 2, shared_capacity);
    println!(
        "\npredicted optimum: A={best_a} lines, B={} lines -> {best_total} misses \
         (even split would cost {even})",
        shared_capacity - best_a
    );

    // Validate with direct simulations of the partitioned caches.
    let simulate = |trace: &Trace, lines: u64| -> u64 {
        let mut cache = LruCache::new(lines as usize);
        cache.run_trace(trace.as_slice()).misses
    };
    let sim_best = simulate(&trace_a, best_a) + simulate(&trace_b, shared_capacity - best_a);
    let sim_even =
        simulate(&trace_a, shared_capacity / 2) + simulate(&trace_b, shared_capacity / 2);
    assert_eq!(sim_best, best_total, "MRC prediction must match simulation");
    println!(
        "simulated: optimal partition {sim_best} misses vs even split {sim_even} \
         ({:.1}% fewer)",
        100.0 * (sim_even - sim_best) as f64 / sim_even as f64
    );
    assert!(sim_best <= sim_even);
}

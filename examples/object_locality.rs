//! Object-level locality analysis — the data-layout application from the
//! paper's Section VII (Zhong et al.'s array regrouping, Lu et al.'s
//! object-level cache partitioning).
//!
//! The three matrices of `C = A·B` have radically different reuse
//! behaviour under the naive i-j-k loop: A is scanned row-wise with tight
//! reuse, B column-wise with n²-scale distances, C is register-like. One
//! reuse-distance pass, split per object, exposes this — the signal a
//! layout optimizer (or an object-level cache partitioner) needs.
//!
//! Run with: `cargo run --release --example object_locality`

use parda::core::object::{analyze_by_region, RegionMap};
use parda::pinsim::{collect_trace, MatMul};
use parda::prelude::*;

fn report(title: &str, trace: &Trace, n: u64) {
    // MatMul's address layout (word granular): A at 0x1000_0000,
    // B at 0x2000_0000, C at 0x3000_0000, each n×n×8 bytes.
    let bytes = n * n * 8;
    let mut map = RegionMap::new();
    let a = map.add_region("A", 0x1000_0000, 0x1000_0000 + bytes);
    let b = map.add_region("B", 0x2000_0000, 0x2000_0000 + bytes);
    let c = map.add_region("C", 0x3000_0000, 0x3000_0000 + bytes);

    let analysis = analyze_by_region::<SplayTree>(trace.as_slice(), &map);
    assert_eq!(analysis.unmapped.total(), 0, "all accesses map to A/B/C");

    println!("\n== {title} (n = {n}) ==");
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12}",
        "object", "refs", "mean_dist", "p90_dist", "miss@n-lines"
    );
    for (id, name) in [(a, "A"), (b, "B"), (c, "C")] {
        let h = &analysis.per_region[id];
        println!(
            "{name:>7} {:>10} {:>12.1} {:>12} {:>12}",
            h.total(),
            h.mean_finite_distance().unwrap_or(0.0),
            h.finite_distance_quantile(0.9).unwrap_or(0),
            h.miss_count(n),
        );
    }
    // Consistency: per-object histograms sum to the global one.
    let mut sum = analysis.per_region[a].clone();
    sum.merge(&analysis.per_region[b]);
    sum.merge(&analysis.per_region[c]);
    assert_eq!(sum, analysis.total);
}

fn main() {
    let n = 32u64;
    let naive = collect_trace(MatMul::naive(n as usize));
    let blocked = collect_trace(MatMul::blocked(n as usize, 8));
    report("naive i-j-k", &naive, n);
    report("8x8 tiled", &blocked, n);

    println!(
        "\nReading the tables: under the naive loop, B's 90th-percentile reuse \
         distance sits near n² (column-major re-walks of a row-major array) \
         while A and C stay small — B is the regrouping/partitioning target. \
         Tiling pulls B's distances down by an order of magnitude, which is \
         exactly why it helps every cache level at once."
    );
}

//! Miss-ratio-curve modelling: how well does the reuse-distance MRC (a
//! fully associative model) predict realistic set-associative caches?
//!
//! This is the classic application from the paper's introduction: one
//! analysis pass substitutes for a simulation per cache size. We tile a
//! matrix multiply, derive its MRC, and compare the prediction against
//! direct simulations of fully associative, 8-way, and direct-mapped
//! caches at each size.
//!
//! Run with: `cargo run --release --example mrc_cache_model`

use parda::cachesim::SetAssociativeCache;
use parda::pinsim::{collect_trace, MatMul};
use parda::prelude::*;

fn simulate(trace: &Trace, num_sets: usize, ways: usize) -> f64 {
    // Word-granular lines (block_bits = 0) to match the analysis exactly.
    let mut cache = SetAssociativeCache::new(num_sets, ways, 0);
    cache.run_trace(trace.as_slice()).miss_ratio()
}

fn report(name: &str, trace: &Trace) {
    let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    println!("\n== {name}: N={} M={} ==", trace.len(), trace.distinct());
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "lines", "MRC(pred)", "full-assoc", "8-way", "direct"
    );
    for lines in [64usize, 256, 1024, 4096] {
        let predicted = hist.miss_ratio(lines as u64);
        let full = simulate(trace, 1, lines);
        let eight_way = simulate(trace, lines / 8, 8);
        let direct = simulate(trace, lines, 1);
        println!("{lines:>8} {predicted:>12.4} {full:>12.4} {eight_way:>12.4} {direct:>12.4}");
        // The MRC *is* the fully associative simulation.
        assert!(
            (predicted - full).abs() < 1e-12,
            "MRC must match LRU exactly"
        );
    }
}

fn main() {
    let naive = collect_trace(MatMul::naive(48));
    let blocked = collect_trace(MatMul::blocked(48, 8));
    report("matmul 48x48 (naive ijk)", &naive);
    report("matmul 48x48 (8x8 tiles)", &blocked);

    println!(
        "\nReading the tables: the fully associative column equals the MRC \
         prediction exactly (asserted); set-associative caches add conflict \
         misses on top, largest for the direct-mapped column. Tiling shifts \
         the MRC knee from ~3·n (one matrix row set) down to ~3·tile²."
    );
}

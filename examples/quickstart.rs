//! Quickstart: generate a synthetic trace, analyze it in parallel, and
//! read off cache behaviour.
//!
//! Run with: `cargo run --release --example quickstart`

use parda::prelude::*;

fn main() {
    // 1. Build a workload: 500k references over 20k distinct addresses with
    //    strong temporal locality (geometric reuse distances, mean 32).
    let n = 500_000;
    let m = 20_000;
    let trace = StackDistGen::new(n, m, ReuseProfile::geometric(32.0), 7).take_trace(n as usize);
    println!("trace: {}", trace.stats());

    // 2. Parallel reuse distance analysis (PARDA, Algorithm 3) on 4 ranks.
    let config = PardaConfig::with_ranks(4);
    let start = std::time::Instant::now();
    let hist = parda_threads::<SplayTree>(trace.as_slice(), &config);
    println!(
        "parda (4 ranks): {} references analyzed in {:.1} ms",
        hist.total(),
        start.elapsed().as_secs_f64() * 1e3
    );

    // 3. The histogram answers cache questions for *every* LRU size at once.
    println!("\nreuse distance histogram (log2 bins):");
    print!("{}", hist.to_binned().render());

    println!("miss ratio curve:");
    for (capacity, miss_ratio) in hist.miss_ratio_curve(&[64, 256, 1024, 4096, 16384, 65536]) {
        println!(
            "  {capacity:>6}-line LRU cache -> {:.1}% misses",
            miss_ratio * 100.0
        );
    }

    // 4. Model a whole cache hierarchy from the same histogram: per-level
    //    hit attribution and average memory access time.
    let hierarchy = CacheHierarchy::typical_l1_l2_l3();
    let stats = hierarchy.analyze(&hist);
    println!("\nthree-level hierarchy attribution:");
    for (name, level) in ["L1", "L2", "L3"].iter().zip(&stats.levels) {
        println!(
            "  {name} ({} lines): {:5.1}% of references",
            level.level.capacity,
            100.0 * level.hits as f64 / hist.total() as f64
        );
    }
    println!(
        "  memory: {:5.1}%  ->  AMAT = {:.2} cycles",
        100.0 * stats.memory_accesses as f64 / hist.total() as f64,
        stats.amat
    );

    // 5. Cross-check one point against a real LRU simulation.
    let mut cache = LruCache::new(1024);
    let stats = cache.run_trace(trace.as_slice());
    assert_eq!(stats.hits, hist.hit_count(1024));
    println!(
        "\nvalidated: 1024-line LRU simulation reports {} hits — histogram predicts {}",
        stats.hits,
        hist.hit_count(1024)
    );
}

//! Cross-crate validation: every analysis engine, every tree, and the cache
//! simulator must tell one consistent story on realistic workloads.

use parda::prelude::*;

fn spec_trace(name: &str, n: u64, seed: u64) -> Trace {
    SpecBenchmark::by_name(name)
        .unwrap()
        .generator(n, seed)
        .take_trace(n as usize)
}

#[test]
fn all_engines_agree_on_spec_workloads() {
    for name in ["mcf", "gcc", "povray"] {
        let trace = spec_trace(name, 20_000, 5);
        let reference = analyze_naive(trace.as_slice());
        assert_eq!(
            analyze_sequential::<SplayTree>(trace.as_slice(), None),
            reference,
            "{name}: splay"
        );
        assert_eq!(
            analyze_sequential::<AvlTree>(trace.as_slice(), None),
            reference,
            "{name}: avl"
        );
        assert_eq!(
            analyze_sequential::<Treap>(trace.as_slice(), None),
            reference,
            "{name}: treap"
        );
        assert_eq!(
            analyze_sequential::<VectorTree>(trace.as_slice(), None),
            reference,
            "{name}: vector"
        );
        for ranks in [2, 5, 8] {
            let cfg = PardaConfig::with_ranks(ranks);
            assert_eq!(
                parda_threads::<SplayTree>(trace.as_slice(), &cfg),
                reference,
                "{name}: parda p={ranks}"
            );
            assert_eq!(
                parda_msg::<AvlTree>(trace.as_slice(), &cfg),
                reference,
                "{name}: parda-msg p={ranks}"
            );
        }
        assert_eq!(
            parda_phased::<Treap, _>(
                SliceStream::new(trace.as_slice()),
                1_234,
                &PardaConfig::with_ranks(3)
            ),
            reference,
            "{name}: phased"
        );
    }
}

#[test]
fn histogram_predicts_lru_simulation_on_every_locality_class() {
    for name in ["milc", "mcf", "namd", "gcc", "libquantum"] {
        let trace = spec_trace(name, 30_000, 9);
        let hist = parda_threads::<SplayTree>(trace.as_slice(), &PardaConfig::with_ranks(4));
        for capacity in [16usize, 256, 4_096] {
            let mut cache = LruCache::new(capacity);
            let stats = cache.run_trace(trace.as_slice());
            assert_eq!(
                hist.hit_count(capacity as u64),
                stats.hits,
                "{name} at {capacity} lines"
            );
        }
    }
}

#[test]
fn bounded_analysis_contract_on_spec_workloads() {
    for name in ["mcf", "sphinx3"] {
        let trace = spec_trace(name, 25_000, 2);
        let full = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        for bound in [32u64, 256] {
            let mut cfg = PardaConfig::with_ranks(4);
            cfg.bound = Some(bound);
            let bounded = parda_threads::<SplayTree>(trace.as_slice(), &cfg);
            assert_eq!(bounded.total(), full.total(), "{name} B={bound}");
            for d in 0..bound {
                assert_eq!(bounded.count(d), full.count(d), "{name} B={bound} d={d}");
            }
            // The derived MRC agrees for every cache the bound covers.
            for cap in [1u64, bound / 2, bound] {
                assert!(
                    (bounded.miss_ratio(cap) - full.miss_ratio(cap)).abs() < 1e-12,
                    "{name} B={bound} cap={cap}"
                );
            }
        }
    }
}

#[test]
fn trace_io_round_trips_through_analysis() {
    use parda::trace::io::{read_trace, write_trace, Encoding};
    let trace = spec_trace("bzip2", 10_000, 1);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace, Encoding::DeltaVarint).unwrap();
    let back = read_trace(buf.as_slice()).unwrap();
    assert_eq!(
        analyze_sequential::<SplayTree>(trace.as_slice(), None),
        analyze_sequential::<SplayTree>(back.as_slice(), None)
    );
}

#[test]
fn mrc_from_histogram_is_monotone_and_anchored() {
    let trace = spec_trace("astar", 30_000, 4);
    let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let curve = hist.miss_ratio_curve_pow2();
    assert!(
        curve.windows(2).all(|w| w[1].1 <= w[0].1),
        "MRC must not increase"
    );
    let cold = hist.infinite() as f64 / hist.total() as f64;
    let last = curve.last().unwrap().1;
    assert!(
        (last - cold).abs() < 1e-12,
        "MRC asymptote must equal the cold-miss ratio"
    );
}

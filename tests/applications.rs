//! Integration tests for the application layer built on the analyzers:
//! object-level analysis, co-run interference, partitioning, sampling,
//! and phase detection — composed end-to-end through the facade API.

use parda::core::object::{analyze_by_region, RegionMap};
use parda::core::shared::{analyze_corun, optimal_partition};
use parda::core::window::{detect_phases, windowed_histograms};
use parda::pinsim::{collect_trace, MatMul, StreamTriad};
use parda::prelude::*;

#[test]
fn object_analysis_of_a_real_kernel_sums_to_global() {
    let n = 24u64;
    let trace = collect_trace(MatMul::naive(n as usize));
    let bytes = n * n * 8;
    let mut map = RegionMap::new();
    let ids: Vec<_> = [0x1000_0000u64, 0x2000_0000, 0x3000_0000]
        .iter()
        .enumerate()
        .map(|(i, &base)| map.add_region(&format!("m{i}"), base, base + bytes))
        .collect();

    let analysis = analyze_by_region::<SplayTree>(trace.as_slice(), &map);
    let mut sum = ReuseHistogram::new();
    for &id in &ids {
        sum.merge(&analysis.per_region[id]);
    }
    sum.merge(&analysis.unmapped);
    assert_eq!(sum, analysis.total);
    assert_eq!(
        analysis.total,
        analyze_sequential::<SplayTree>(trace.as_slice(), None)
    );
}

#[test]
fn corun_analysis_predicts_shared_cache_simulation() {
    // The shared stream's histogram must predict a shared LRU cache
    // exactly, like any other trace.
    let a = collect_trace(StreamTriad::new(500, 3));
    let b = collect_trace(MatMul::blocked(16, 4));
    let corun = analyze_corun::<SplayTree>(&[a.as_slice(), b.as_slice()], &[1, 2]);

    let shared_stream = parda::core::shared::interleave(&[a.as_slice(), b.as_slice()], &[1, 2]);
    for capacity in [64usize, 512, 2048] {
        let mut cache = LruCache::new(capacity);
        let stats = cache.run_trace(&shared_stream);
        assert_eq!(
            corun.combined.hit_count(capacity as u64),
            stats.hits,
            "capacity {capacity}"
        );
    }
}

#[test]
fn partitioning_beats_even_split_on_asymmetric_pair() {
    let hot: Vec<u64> = (0..20_000).map(|i| i % 32).collect();
    let cold: Vec<u64> = (0..20_000).map(|i| 1_000 + i % 4_000).collect();
    let hh = analyze_sequential::<SplayTree>(&hot, None);
    let hc = analyze_sequential::<SplayTree>(&cold, None);

    let capacity = 4_096u64 + 64;
    let (alloc, optimal) = optimal_partition(&[&hh, &hc], capacity, 32);
    assert_eq!(alloc.iter().sum::<u64>(), capacity);
    let even = hh.miss_count(capacity / 2) + hc.miss_count(capacity / 2);
    assert!(optimal <= even);
    // The hot loop only needs 32 lines; the optimum must hand nearly
    // everything to the cold scanner.
    assert!(alloc[1] >= 4_000, "cold program got {}", alloc[1]);
}

#[test]
fn sampled_estimate_tracks_exact_mrc_on_spec_model() {
    let bench = SpecBenchmark::by_name("gcc").unwrap();
    let trace = bench.generator(120_000, 8).take_trace(120_000);
    let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let (approx, _) = analyze_approx(
        trace.as_slice(),
        ApproxMode::ShardsFixedRate { rate: 1.0 / 8.0 },
    );
    for cap in [64u64, 512, 4_096] {
        let err = (approx.miss_ratio(cap) - exact.miss_ratio(cap)).abs();
        assert!(err < 0.08, "capacity {cap}: error {err}");
    }
}

#[test]
fn phase_detection_across_kernel_switch() {
    // Stream triad then tiled matmul: grossly different signatures.
    let mut trace = collect_trace(StreamTriad::new(2_000, 2)).into_vec();
    let boundary = trace.len();
    trace.extend(collect_trace(MatMul::blocked(16, 4)).into_vec());

    let window = 2_000usize;
    let analysis = windowed_histograms::<SplayTree>(&trace, window);
    let boundaries = detect_phases(&analysis, 0.6);
    // A boundary within one window of the kernel switch.
    assert!(
        boundaries.iter().any(|&b| b.abs_diff(boundary) <= window),
        "kernel switch at {boundary} not detected: {boundaries:?}"
    );
}

//! Cascade observability invariants: the per-rank [`RankMetrics`] emitted
//! by both parallel drivers must tell a self-consistent story about the
//! infinity cascade — every forwarded stream is received exactly once,
//! round vectors stay aligned, batch-delete tallies reconcile with the
//! engines' stream-hit counters, and the new merge/batch timing fields
//! never exceed the enclosing cascade time.

use parda_core::parallel::{parda_msg_with_stats, parda_threads_with_stats, MAX_PARTS_PER_RANK};
use parda_core::PardaConfig;
use parda_obs::RankMetrics;
use parda_tree::{AvlTree, SplayTree, Treap, VectorTree};
use proptest::prelude::*;

fn modular_trace(refs: usize, footprint: u64, stride: u64) -> Vec<u64> {
    (0..refs as u64).map(|i| (i * stride) % footprint).collect()
}

/// Invariants that hold for every driver and mode.
fn assert_common_invariants(metrics: &[RankMetrics]) {
    for m in metrics {
        assert_eq!(
            m.cascade_rounds as usize,
            m.round_infinity_lens.len(),
            "rank {}: one stream length per round",
            m.rank
        );
        assert_eq!(
            m.round_infinity_lens.len(),
            m.round_batch_deletes.len(),
            "rank {}: one batch-delete tally per round",
            m.rank
        );
        assert!(
            m.merge_ns + m.batch_ns <= m.cascade_ns,
            "rank {}: merge ({}) + batch ({}) exceed cascade time ({})",
            m.rank,
            m.merge_ns,
            m.batch_ns,
            m.cascade_ns
        );
    }
    // Conservation: every stream forwarded across a (virtual) rank
    // boundary is received exactly once somewhere to its left.
    let forwarded: u64 = metrics.iter().map(|m| m.infinities_forwarded).sum();
    let received: u64 = metrics
        .iter()
        .flat_map(|m| m.round_infinity_lens.iter())
        .sum();
    assert_eq!(forwarded, received, "forwarded vs received stream mass");
}

/// In the space-optimized unbounded mode, a stream element resolved during
/// an absorb round is exactly one engine stream hit — so the per-round
/// batch-delete tallies must reconcile with the engine counters.
fn assert_space_opt_accounting(metrics: &[RankMetrics]) {
    for m in metrics {
        assert_eq!(
            m.round_batch_deletes.iter().sum::<u64>(),
            m.engine.stream_hits,
            "rank {}: batch deletes vs engine stream hits",
            m.rank
        );
    }
}

#[test]
fn msg_round_structure_is_exact() {
    let trace = modular_trace(4_000, 509, 13);
    for np in [2usize, 3, 5] {
        let cfg = PardaConfig::with_ranks(np);
        let (_, metrics) = parda_msg_with_stats::<SplayTree>(&trace, &cfg);
        assert_eq!(metrics.len(), np);
        for (p, m) in metrics.iter().enumerate() {
            assert_eq!(m.rank, p);
            // Algorithm 3: rank p performs exactly np − p − 1 absorb rounds,
            // counted whether or not the incoming list is empty.
            assert_eq!(m.cascade_rounds, (np - p - 1) as u64, "np={np} rank={p}");
        }
        assert_common_invariants(&metrics);
        assert_space_opt_accounting(&metrics);
    }
}

#[test]
fn threads_rounds_bounded_by_subdivision() {
    let trace = modular_trace(6_000, 701, 17);
    for np in [2usize, 4] {
        // Tiny grain forces the full MAX_PARTS_PER_RANK subdivision.
        let cfg = PardaConfig::with_ranks(np).subchunk_refs(1);
        let (_, metrics) = parda_threads_with_stats::<SplayTree>(&trace, &cfg);
        assert_eq!(metrics.len(), np);
        for m in &metrics {
            // A rank's items absorb at most one stream each; only non-empty
            // streams are counted as rounds.
            assert!(
                (m.cascade_rounds as usize) <= MAX_PARTS_PER_RANK,
                "np={np} rank={} rounds={}",
                m.rank,
                m.cascade_rounds
            );
        }
        assert_common_invariants(&metrics);
        assert_space_opt_accounting(&metrics);
    }
}

#[test]
fn batched_rounds_populate_delete_and_timing_fields() {
    // Dense reuse across chunk boundaries: most forwarded infinities
    // resolve in the left neighbour, so the absorb rounds actually delete
    // from the trees and the batched path records its timings.
    let trace = modular_trace(20_000, 997, 1);
    let cfg = PardaConfig::with_ranks(4);
    let (_, metrics) = parda_threads_with_stats::<SplayTree>(&trace, &cfg);
    assert_common_invariants(&metrics);
    assert_space_opt_accounting(&metrics);
    let total_deletes: u64 = metrics
        .iter()
        .flat_map(|m| m.round_batch_deletes.iter())
        .sum();
    assert!(
        total_deletes > 0,
        "dense trace must resolve stream infinities"
    );
    // The stream at each boundary is ~997 elements — far above the
    // engine's batching threshold — so the merge pass must have been timed
    // on at least one rank. (Individual rounds can still measure 0 ns on a
    // coarse clock; the sum across ranks of a 20k-ref run cannot.)
    let merge_total: u64 = metrics.iter().map(|m| m.merge_ns).sum();
    assert!(
        merge_total > 0,
        "batched absorb rounds must record merge time"
    );
}

#[test]
fn unoptimized_mode_keeps_rounds_aligned() {
    let trace = modular_trace(3_000, 401, 7);
    let cfg = PardaConfig::with_ranks(3).space_optimized(false);
    let (_, msg) = parda_msg_with_stats::<AvlTree>(&trace, &cfg);
    assert_common_invariants(&msg);
    let (_, threads) = parda_threads_with_stats::<AvlTree>(&trace, &cfg);
    assert_common_invariants(&threads);
}

proptest! {
    /// The invariants hold for every trace shape, rank count, tree, and
    /// subdivision grain, in both drivers.
    #[test]
    fn cascade_invariants_prop(
        trace in proptest::collection::vec(0u64..128, 0..600),
        np in 2usize..6,
        grain in 1usize..300,
    ) {
        let cfg = PardaConfig::with_ranks(np);
        let (_, msg) = parda_msg_with_stats::<Treap>(&trace, &cfg);
        assert_common_invariants(&msg);
        assert_space_opt_accounting(&msg);

        let sub = cfg.subchunk_refs(grain);
        let (_, threads) = parda_threads_with_stats::<VectorTree>(&trace, &sub);
        assert_common_invariants(&threads);
        assert_space_opt_accounting(&threads);
    }
}

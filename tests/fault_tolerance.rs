//! End-to-end fault tolerance: corrupted trace files driven through the
//! full pipeline must never panic or hang. `Strict` fails cleanly on the
//! first violation; the lossy policies produce exactly the histogram of
//! the surviving frames plus an honest [`parda::obs::RecoveryMetrics`]
//! report. The corruptions here are randomized — byte flips, truncations,
//! and outright garbage — over freshly written v2.1 files.

use parda::prelude::*;
use parda::trace::io::{write_trace_v2_framed, Encoding};
use parda::trace::{decode_trace_recovering, load_trace_recovering, verify_trace};
use proptest::prelude::*;

const FRAME_REFS: usize = 64;

/// Serialize a trace into a v2.1 (checksummed) image with 64-ref frames.
fn framed_image(trace: &[u64], encoding: Encoding) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace_v2_framed(
        &mut buf,
        &Trace::from_vec(trace.to_vec()),
        encoding,
        FRAME_REFS,
    )
    .unwrap();
    buf
}

/// Byte offset of frame `i`'s payload in a freshly written *raw* v2.1
/// image: 24-byte file header, then per full frame a 12-byte inline header
/// and `FRAME_REFS`·8 payload bytes. Valid because only the last frame can
/// be partial.
fn raw_payload_offset(frame: usize) -> usize {
    24 + frame * (12 + FRAME_REFS * 8) + 12
}

/// The trace that remains after dropping the given frames whole.
fn surviving(trace: &[u64], corrupt: &[usize]) -> Vec<u64> {
    trace
        .chunks(FRAME_REFS)
        .enumerate()
        .filter(|(i, _)| !corrupt.contains(i))
        .flat_map(|(_, c)| c.iter().copied())
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parda-fault-tolerance-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    /// Flipping payload bytes in k distinct frames: strict decoding fails,
    /// the lossy policies return exactly the in-order concatenation of the
    /// surviving frames, and the metrics tally exactly the k victims.
    #[test]
    fn byte_flips_skip_exactly_the_corrupt_frames(
        trace in proptest::collection::vec(0u64..512, 320..1280),
        picks in proptest::collection::vec(any::<u64>(), 1..4),
        flip in 1u8..=255,
    ) {
        let image = framed_image(&trace, Encoding::Raw);
        let nframes = trace.len().div_ceil(FRAME_REFS);
        // Corrupt only full frames so the fixed-stride offset formula and
        // the refs_dropped arithmetic below stay exact.
        let full = trace.len() / FRAME_REFS;
        let mut corrupt: Vec<usize> = picks.iter().map(|p| (*p as usize) % full).collect();
        corrupt.sort_unstable();
        corrupt.dedup();

        let mut bad = image.clone();
        for (j, &f) in corrupt.iter().enumerate() {
            bad[raw_payload_offset(f) + (j * 97) % (FRAME_REFS * 8)] ^= flip;
        }

        prop_assert!(decode_trace_recovering(&bad, Degradation::Strict).is_err());

        let expect = surviving(&trace, &corrupt);
        for policy in [Degradation::Repair, Degradation::BestEffort] {
            let (got, m) = decode_trace_recovering(&bad, policy).unwrap();
            prop_assert_eq!(got.as_slice(), expect.as_slice());
            prop_assert_eq!(m.frames_total, nframes as u64);
            prop_assert_eq!(m.frames_skipped, corrupt.len() as u64);
            prop_assert_eq!(m.refs_dropped, (corrupt.len() * FRAME_REFS) as u64);
            prop_assert_eq!(m.crc_failures, corrupt.len() as u64);
            let skipped: Vec<u64> = corrupt.iter().map(|&f| f as u64).collect();
            prop_assert_eq!(m.skipped_frames.clone(), skipped);
        }
    }

    /// Truncating the image anywhere must never panic; with the file header
    /// intact, best-effort salvages a frame-aligned prefix of the original.
    #[test]
    fn truncation_is_salvaged_or_rejected_never_a_panic(
        trace in proptest::collection::vec(0u64..512, 64..640),
        encoding_raw in any::<bool>(),
        cut_seed in any::<u64>(),
    ) {
        let encoding = if encoding_raw { Encoding::Raw } else { Encoding::DeltaVarint };
        let image = framed_image(&trace, encoding);
        let cut = (cut_seed as usize) % image.len();
        let short = &image[..cut];

        // Footer gone: strict and repair must reject it (or, for cut == 0
        // and other sub-header cuts, fail header parsing) — cleanly.
        prop_assert!(decode_trace_recovering(short, Degradation::Strict).is_err());
        prop_assert!(decode_trace_recovering(short, Degradation::Repair).is_err());

        match decode_trace_recovering(short, Degradation::BestEffort) {
            Ok((got, m)) => {
                // Whatever was salvaged is a prefix of the original trace.
                prop_assert!(got.len() <= trace.len());
                prop_assert_eq!(got.as_slice(), &trace[..got.len()]);
                prop_assert_eq!(m.refs_dropped, (trace.len() - got.len()) as u64);
            }
            // Only a destroyed *file header* is allowed to fail best-effort.
            Err(_) => prop_assert!(cut < 24, "cut={cut} failed after a readable header"),
        }
    }

    /// Arbitrary garbage: every policy returns an error or a trace, never a
    /// panic, a hang, or an absurd allocation. A real header grafted onto
    /// garbage must still succeed under best-effort (salvaging nothing).
    #[test]
    fn garbage_bytes_never_panic(
        garbage in proptest::collection::vec(any::<u8>(), 0..600),
        trace in proptest::collection::vec(0u64..64, 128..192),
    ) {
        for policy in [Degradation::Strict, Degradation::Repair, Degradation::BestEffort] {
            let _ = decode_trace_recovering(&garbage, policy);
        }
        // "Never fail once a readable file header was found": a valid v2.1
        // header followed by junk decodes to *something* under best-effort.
        let image = framed_image(&trace, Encoding::Raw);
        let mut grafted = image[..24].to_vec();
        grafted.extend_from_slice(&garbage);
        let (got, _) = decode_trace_recovering(&grafted, Degradation::BestEffort).unwrap();
        prop_assert!(got.len() <= trace.len());
    }

    /// The full pipeline over a corrupt *file*: under best-effort, both the
    /// in-memory parallel driver and the streaming phased driver produce
    /// exactly the clean histogram of the surviving frames, and the report
    /// counts the victims.
    #[test]
    fn best_effort_analysis_equals_clean_analysis_of_survivors(
        trace in proptest::collection::vec(0u64..256, 640..960),
        pick in any::<u64>(),
        ranks in 2usize..5,
    ) {
        let full = trace.len() / FRAME_REFS;
        let corrupt = vec![(pick as usize) % full];
        let mut bad = framed_image(&trace, Encoding::Raw);
        bad[raw_payload_offset(corrupt[0]) + 11] ^= 0xA5;
        let path = tmp("best-effort.trc");
        std::fs::write(&path, &bad).unwrap();

        let expect_trace = surviving(&trace, &corrupt);
        let modes = [
            Mode::Threads,
            Mode::Phased { chunk: 100, reduction: Reduction::ShipToRankZero },
        ];
        for mode in modes {
            let analysis = Analysis::new()
                .mode(mode)
                .ranks(ranks)
                .stats(true)
                .degradation(Degradation::BestEffort);
            let (expect_hist, _) = analysis.run(&expect_trace);
            let (hist, report) = analysis.run_file(&path).unwrap();
            prop_assert_eq!(&hist, &expect_hist);
            let rec = report.unwrap().recovery.expect("recovery metrics attached");
            prop_assert_eq!(rec.frames_skipped, 1);
            prop_assert_eq!(rec.refs_dropped, FRAME_REFS as u64);
        }

        // Strict on the same file is a clean, classified failure.
        let strict = Analysis::new().mode(Mode::Threads).ranks(ranks).run_file(&path);
        prop_assert_eq!(strict.unwrap_err().class(), "corrupt");
    }
}

/// Adversarial header fields: a count far beyond the actual payload and
/// oversized frame shapes must come back as clean errors (no panic, no
/// multi-gigabyte allocation). This drives the load path end-to-end at the
/// facade level.
#[test]
fn adversarial_lengths_are_invalid_data_not_panics() {
    let trace: Vec<u64> = (0..200u64).collect();

    // v1 with a 2^60 count: the reader must hit EOF, not pre-allocate.
    let mut v1 = Vec::new();
    parda::trace::io::write_trace(&mut v1, &Trace::from_vec(trace.clone()), Encoding::Raw).unwrap();
    v1[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
    for policy in [Degradation::Strict, Degradation::Repair] {
        assert!(decode_trace_recovering(&v1, policy).is_err());
    }
    // Best-effort keeps the decodable prefix instead.
    let (got, _) = decode_trace_recovering(&v1, Degradation::BestEffort).unwrap();
    assert_eq!(got.as_slice(), trace.as_slice());

    // v2.1 with an inflated frame count in the inline header: shape check
    // must reject it before any allocation is sized from it.
    let mut v2 = framed_image(&trace, Encoding::Raw);
    v2[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_trace_recovering(&v2, Degradation::Strict).is_err());
    let (got, m) = decode_trace_recovering(&v2, Degradation::Repair).unwrap();
    assert_eq!(got.as_slice(), &trace[64..], "frame 0 quarantined");
    assert_eq!(m.frames_skipped, 1);
}

/// `verify_trace` agrees with the decoder about what is and is not intact,
/// without running any analysis.
#[test]
fn verify_matches_decoder_verdict() {
    let trace: Vec<u64> = (0..640u64).map(|i| (i * 37) % 400).collect();
    let path = tmp("verify.trc");
    std::fs::write(&path, framed_image(&trace, Encoding::Raw)).unwrap();
    let report = verify_trace(&path).unwrap();
    assert_eq!((report.version, report.minor), (2, 1));
    assert_eq!(report.frames, 10);
    assert_eq!(report.refs, 640);
    assert!(report.checksummed);
    let (t, m) = load_trace_recovering(&path, Degradation::Strict).unwrap();
    assert_eq!(t.as_slice(), trace.as_slice());
    assert!(m.is_clean());

    let mut bad = framed_image(&trace, Encoding::Raw);
    bad[raw_payload_offset(4)] ^= 0x10;
    std::fs::write(&path, &bad).unwrap();
    let err = verify_trace(&path).unwrap_err();
    assert!(err.to_string().contains("frame 4"), "{err}");
}

//! Batched-vs-scalar engine equivalence: the prefetch-batched hot path of
//! [`Engine::process_chunk`] must be bit-identical to the scalar reference
//! loop ([`Engine::process_chunk_scalar`]) under every analyzer driver —
//! sequential, message-passing, pipelined shared-memory, and multi-phase —
//! for all four tree structures, with the space optimization both on and
//! off.
//!
//! The generated traces are long enough (≥ several batches per rank) that
//! every driver actually exercises the batched path; the scalar loop is the
//! independently-auditable Algorithm 1 transcription, so agreement here is
//! the correctness argument for the whole hot-path rewrite.

use parda_core::parallel::{parda_msg, parda_threads};
use parda_core::phased::parda_phased;
use parda_core::{Engine, MissSink, PardaConfig};
use parda_hist::ReuseHistogram;
use parda_trace::SliceStream;
use parda_tree::{AvlTree, ReuseTree, SplayTree, Treap, VectorTree};
use proptest::prelude::*;

/// The scalar ground truth: Algorithm 1 one reference at a time.
fn scalar_reference<T: ReuseTree + Default>(trace: &[u64]) -> ReuseHistogram {
    let mut engine: Engine<T> = Engine::new(None, 0);
    engine.process_chunk_scalar(trace, 0, MissSink::Infinite);
    engine.into_histogram()
}

/// Every driver (which all route through the batched `process_chunk`) must
/// reproduce the scalar histogram exactly.
fn assert_all_drivers_match<T: ReuseTree + Default + Send>(
    trace: &[u64],
    ranks: usize,
    space_optimized: bool,
) {
    let expected = scalar_reference::<T>(trace);
    let config = PardaConfig::with_ranks(ranks).space_optimized(space_optimized);

    // seq: the batched engine driven over the whole trace at once.
    let mut engine: Engine<T> = Engine::new(None, trace.len());
    engine.process_chunk(trace, 0, MissSink::Infinite);
    assert_eq!(engine.into_histogram(), expected, "seq (batched)");

    assert_eq!(parda_msg::<T>(trace, &config), expected, "msg");
    assert_eq!(parda_threads::<T>(trace, &config), expected, "threads");

    // Phase chunk > BATCH so the phased engines hit the batched path too.
    let phased = parda_phased::<T, _>(SliceStream::new(trace), 96, &config);
    assert_eq!(phased, expected, "phased");

    // Work-stealing subdivision forced on (tiny grain → MAX_PARTS_PER_RANK
    // sub-chunks per rank): the fold now runs over virtual ranks and takes
    // the in-place batched absorb path, and must stay bit-identical.
    let subdivided = config.clone().subchunk_refs(16);
    assert_eq!(
        parda_threads::<T>(trace, &subdivided),
        expected,
        "threads (subdivided)"
    );
}

proptest! {
    /// All four trees × four drivers × space optimization on/off agree with
    /// the scalar reference bit-for-bit.
    #[test]
    fn batched_matches_scalar_everywhere(
        trace in proptest::collection::vec(0u64..96, 300..700),
        ranks in 2usize..4,
        space_optimized in any::<bool>(),
    ) {
        assert_all_drivers_match::<SplayTree>(&trace, ranks, space_optimized);
        assert_all_drivers_match::<AvlTree>(&trace, ranks, space_optimized);
        assert_all_drivers_match::<Treap>(&trace, ranks, space_optimized);
        assert_all_drivers_match::<VectorTree>(&trace, ranks, space_optimized);
    }

    /// Batch-boundary edge cases: lengths straddling multiples of the batch
    /// width (64), including exact multiples and one-off lengths.
    #[test]
    fn batch_boundary_lengths(
        pick in 0usize..9,
        addrs in proptest::collection::vec(0u64..32, 256..257),
    ) {
        const LENS: [usize; 9] = [63, 64, 65, 127, 128, 129, 191, 192, 256];
        let trace = &addrs[..LENS[pick]];
        let expected = scalar_reference::<SplayTree>(trace);
        let mut engine: Engine<SplayTree> = Engine::new(None, trace.len());
        engine.process_chunk(trace, 0, MissSink::Infinite);
        prop_assert_eq!(engine.into_histogram(), expected);
    }

    /// Within-batch repeats (tiny address space forces distance-0 runs and
    /// same-batch reuse) are the adversarial case for the probe-ahead
    /// table pass.
    #[test]
    fn dense_repeats_within_batch(
        trace in proptest::collection::vec(0u64..4, 128..400),
    ) {
        let expected = scalar_reference::<Treap>(&trace);
        let mut engine: Engine<Treap> = Engine::new(None, trace.len());
        engine.process_chunk(&trace, 0, MissSink::Infinite);
        prop_assert_eq!(engine.into_histogram(), expected);
    }

    /// Wide address spaces make every cascade stream long (most references
    /// are chunk-local first touches), so each absorb round crosses the
    /// engine's batching threshold and runs the merge + rank_delete_batch
    /// path. All four trees must agree with the scalar reference.
    #[test]
    fn long_cascade_streams_hit_batched_absorb(
        trace in proptest::collection::vec(0u64..2_048, 600..1_000),
        ranks in 2usize..5,
    ) {
        assert_all_drivers_match::<SplayTree>(&trace, ranks, true);
        assert_all_drivers_match::<AvlTree>(&trace, ranks, true);
        assert_all_drivers_match::<Treap>(&trace, ranks, true);
        assert_all_drivers_match::<VectorTree>(&trace, ranks, true);
    }

    /// The subdivision grain never changes the histogram — any contiguous
    /// partition of the trace folds to the sequential answer.
    #[test]
    fn subdivision_grain_is_transparent(
        trace in proptest::collection::vec(0u64..64, 100..500),
        ranks in 2usize..5,
        grain in 1usize..200,
    ) {
        let expected = scalar_reference::<SplayTree>(&trace);
        let config = PardaConfig::with_ranks(ranks).subchunk_refs(grain);
        prop_assert_eq!(parda_threads::<SplayTree>(&trace, &config), expected);
    }
}

/// Forwarding misses (the cascade-facing sink) must also agree between the
/// batched and scalar paths — same histogram *and* same forwarded stream.
#[test]
fn forward_sink_matches_scalar() {
    let trace: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 160).collect();

    let mut scalar: Engine<AvlTree> = Engine::new(None, 0);
    let mut scalar_inf = Vec::new();
    scalar.process_chunk_scalar(&trace, 1000, MissSink::Forward(&mut scalar_inf));

    let mut batched: Engine<AvlTree> = Engine::new(None, trace.len());
    let mut batched_inf = Vec::new();
    batched.process_chunk(&trace, 1000, MissSink::Forward(&mut batched_inf));

    assert_eq!(batched_inf, scalar_inf);
    assert_eq!(batched.histogram(), scalar.histogram());
    assert_eq!(batched.forwarded(), scalar.forwarded());
}

/// Bounded mode takes the scalar path by design (Algorithm 7's eviction
/// couples table and tree per reference); the public entry point must stay
/// exact regardless.
#[test]
fn bounded_mode_unchanged_by_batching() {
    let trace: Vec<u64> = (0..800u64).map(|i| (i * 31) % 200).collect();
    let mut bounded: Engine<SplayTree> = Engine::new(Some(32), trace.len());
    bounded.process_chunk(&trace, 0, MissSink::Infinite);
    let hist = bounded.into_histogram();
    assert_eq!(hist.total(), trace.len() as u64);
    assert!(hist.max_distance().unwrap_or(0) < 32);
}

//! Cross-crate accuracy guarantees for the constant-space approximate
//! engines (`parda_core::approx`) — the contract behind `--approx`.
//!
//! Each envelope is stated relative to the sketch's own a-priori error
//! estimate (`expected_mae ~ 1/sqrt(sampled_addrs)`), so the assertions
//! scale with the sampling rate instead of hard-coding per-rate numbers.
//! The `#[ignore]`d acceptance test is the ISSUE's 10M-reference bar;
//! ci.sh runs it in release.

use parda::prelude::*;
use parda::trace::gen::ZipfGen;

fn zipf(footprint: usize, theta: f64, refs: usize, seed: u64) -> Trace {
    ZipfGen::new(footprint, theta, 0, seed).take_trace(refs)
}

fn pow2_caps(lo: u64, hi: u64) -> Vec<u64> {
    (0..)
        .map(|i| 1u64 << i)
        .skip_while(|&c| c < lo)
        .take_while(|&c| c <= hi)
        .collect()
}

#[test]
fn fixed_rate_shards_tracks_exact_at_every_required_rate() {
    let trace = zipf(50_000, 0.8, 400_000, 11);
    let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let caps = pow2_caps(1024, 65_536);
    for rate in [0.1, 0.01, 0.001] {
        let (hist, metrics) =
            analyze_approx(trace.as_slice(), ApproxMode::ShardsFixedRate { rate });
        let mae = hist.mrc_mean_absolute_error(&exact, &caps);
        let envelope = 3.0 * metrics.expected_mae + 0.01;
        assert!(
            mae <= envelope,
            "rate {rate}: MAE {mae:.4} > envelope {envelope:.4} \
             ({} sampled addrs)",
            metrics.sampled_addrs
        );
    }
}

#[test]
fn fixed_size_shards_tracks_exact_at_both_required_sizes() {
    let trace = zipf(60_000, 0.8, 400_000, 21);
    let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let caps = pow2_caps(1024, 65_536);
    for s_max in [1024u64, 8192] {
        let (hist, metrics) = analyze_approx(
            trace.as_slice(),
            ApproxMode::ShardsFixedSize {
                s_max: s_max as usize,
            },
        );
        let mae = hist.mrc_mean_absolute_error(&exact, &caps);
        let envelope = 3.0 * metrics.expected_mae + 0.01;
        assert!(
            mae <= envelope,
            "s_max {s_max}: MAE {mae:.4} > envelope {envelope:.4}"
        );
        assert!(
            metrics.sampled_addrs <= s_max,
            "s_max {s_max}: {} live addresses exceed the cap",
            metrics.sampled_addrs
        );
    }
}

#[test]
fn fixed_size_sketch_memory_is_independent_of_trace_length() {
    // O(s_max), not O(M): quadrupling the trace (and footprint actually
    // touched) must not grow the sketch.
    let short = zipf(80_000, 0.7, 150_000, 5);
    let long = zipf(80_000, 0.7, 600_000, 5);
    let mode = ApproxMode::ShardsFixedSize { s_max: 1024 };
    let (_, m_short) = analyze_approx(short.as_slice(), mode);
    let (_, m_long) = analyze_approx(long.as_slice(), mode);
    assert!(m_long.evictions > 0, "the cap must actually engage");
    assert!(
        m_long.sketch_bytes <= m_short.sketch_bytes.max(1024 * 256),
        "sketch grew with the trace: {} -> {} bytes",
        m_short.sketch_bytes,
        m_long.sketch_bytes
    );
    assert!(
        m_long.sketch_bytes <= 1024 * 256,
        "sketch is not O(s_max): {} bytes for s_max=1024",
        m_long.sketch_bytes
    );
}

#[test]
fn rate_one_is_bit_exact() {
    let trace = zipf(5_000, 0.7, 60_000, 3);
    let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let (hist, metrics) =
        analyze_approx(trace.as_slice(), ApproxMode::ShardsFixedRate { rate: 1.0 });
    assert_eq!(hist, exact, "rate 1.0 must degenerate to exact analysis");
    assert_eq!(metrics.effective_rate, 1.0);
}

#[test]
fn sketches_merge_to_the_whole_trace_sketch() {
    let trace = zipf(20_000, 0.7, 120_000, 13);
    let (a_half, b_half) = trace.as_slice().split_at(60_000);
    // Pow-2 rate: every weight is a power of two, so the split/merged and
    // whole-trace float accumulations are bit-identical, not just close.
    for mode in [
        ApproxMode::ShardsFixedRate { rate: 0.25 },
        ApproxMode::Aet { rate: 0.25 },
    ] {
        let mut a = ApproxSketch::new(mode);
        a.update(a_half);
        let mut b = ApproxSketch::new(mode);
        b.update(b_half);
        a.merge(b).expect("same configuration merges");
        let mut whole = ApproxSketch::new(mode);
        whole.update(trace.as_slice());
        assert_eq!(
            a.finalize(),
            whole.finalize(),
            "{mode}: merge(sketch(A), sketch(B)) != sketch(A ++ B)"
        );
    }
}

#[test]
fn builder_routes_approx_modes_end_to_end() {
    let trace = zipf(10_000, 0.8, 80_000, 7);
    for mode in [
        ApproxMode::ShardsFixedRate { rate: 0.125 },
        ApproxMode::ShardsFixedSize { s_max: 512 },
        ApproxMode::Aet { rate: 0.125 },
    ] {
        let (direct, _) = analyze_approx(trace.as_slice(), mode);
        let (built, report) = Analysis::new()
            .approx(mode)
            .stats(true)
            .run(trace.as_slice());
        assert_eq!(direct, built, "{mode}: builder vs direct");
        let report = report.expect("stats were requested");
        let approx = report.approx.expect("approx metrics attached");
        assert_eq!(approx.mode, mode.name());
        assert!(approx.sketch_bytes > 0);
    }
}

/// The ISSUE acceptance bar: fixed-size SHARDS at `s_max = 8192` analyzes
/// a 10M-reference Zipfian trace within 2% mean absolute MRC error of
/// exact, holding O(s_max) sketch memory. Debug-mode exact analysis of
/// 10M references is slow, so ci.sh runs this in release:
///
///   cargo test --release --test approx_accuracy -- --ignored
#[test]
#[ignore = "10M-reference acceptance run; invoked in release by ci.sh"]
fn acceptance_fixed_size_8192_within_2pct_on_10m_zipfian() {
    let trace = zipf(1_000_000, 0.8, 10_000_000, 42);
    let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let caps = pow2_caps(1024, 2 * exact.max_distance().unwrap_or(1));
    let (hist, metrics) = analyze_approx(
        trace.as_slice(),
        ApproxMode::ShardsFixedSize { s_max: 8192 },
    );
    let mae = hist.mrc_mean_absolute_error(&exact, &caps);
    assert!(mae <= 0.02, "acceptance MAE {mae:.4} > 0.02");
    assert!(
        metrics.sampled_addrs <= 8192,
        "{} live addresses exceed s_max",
        metrics.sampled_addrs
    );
    assert!(
        metrics.sketch_bytes <= 8192 * 256,
        "sketch is not O(s_max): {} bytes",
        metrics.sketch_bytes
    );
}

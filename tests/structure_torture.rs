//! Large randomized torture runs over every ordered structure: all four
//! `ReuseTree` implementations driven through hundreds of thousands of
//! mixed operations must agree with each other at every checkpoint.

use parda::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive all four trees through an identical op stream; cross-check state
/// at checkpoints.
fn torture(seed: u64, ops: usize) {
    let mut splay = SplayTree::new();
    let mut avl = AvlTree::new();
    let mut treap = Treap::new();
    let mut vector = VectorTree::new();
    let mut live: Vec<u64> = Vec::new(); // timestamps currently present
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_ts = 0u64;

    for step in 0..ops {
        let roll = rng.gen_range(0..100);
        if roll < 55 || live.is_empty() {
            // Insert a fresh (monotone) timestamp — the analyzer's common op.
            let addr = rng.gen::<u32>() as u64;
            splay.insert(next_ts, addr);
            avl.insert(next_ts, addr);
            treap.insert(next_ts, addr);
            vector.insert(next_ts, addr);
            live.push(next_ts);
            next_ts += rng.gen_range(1..4); // gaps exercise absent-key paths
        } else if roll < 80 {
            let idx = rng.gen_range(0..live.len());
            let ts = live.swap_remove(idx);
            let a = splay.remove(ts);
            assert_eq!(avl.remove(ts), a);
            assert_eq!(treap.remove(ts), a);
            assert_eq!(vector.remove(ts), a);
            assert!(a.is_some());
        } else if roll < 95 {
            let ts = rng.gen_range(0..next_ts.max(1));
            let d = splay.distance(ts);
            assert_eq!(avl.distance(ts), d, "distance({ts}) at step {step}");
            assert_eq!(treap.distance(ts), d);
            assert_eq!(vector.distance(ts), d);
        } else {
            let o = splay.oldest();
            assert_eq!(avl.oldest(), o);
            assert_eq!(treap.oldest(), o);
            assert_eq!(vector.oldest(), o);
        }

        if step % 20_000 == 0 {
            assert_eq!(splay.len(), live.len());
            let contents = splay.to_sorted_vec();
            assert_eq!(avl.to_sorted_vec(), contents);
            assert_eq!(treap.to_sorted_vec(), contents);
            assert_eq!(vector.to_sorted_vec(), contents);
            splay.validate();
            avl.validate();
            treap.validate();
            vector.validate();
        }
    }
    assert_eq!(splay.len(), live.len());
}

#[test]
fn torture_seed_1() {
    torture(1, 120_000);
}

#[test]
fn torture_seed_2() {
    torture(2, 120_000);
}

#[test]
fn clear_and_reuse_cycle() {
    // Engines reuse trees across phases: clear must fully reset.
    let mut trees: (SplayTree, AvlTree, Treap, VectorTree) = Default::default();
    for round in 0..5u64 {
        for i in 0..5_000u64 {
            let ts = i; // same timestamps every round: stale state would collide
            let addr = round * 10_000 + i;
            trees.0.insert(ts, addr);
            trees.1.insert(ts, addr);
            trees.2.insert(ts, addr);
            trees.3.insert(ts, addr);
        }
        assert_eq!(trees.0.distance(2_499), 2_500);
        assert_eq!(trees.3.distance(2_499), 2_500);
        trees.0.clear();
        trees.1.clear();
        trees.2.clear();
        trees.3.clear();
        assert!(trees.0.is_empty() && trees.1.is_empty());
        assert!(trees.2.is_empty() && trees.3.is_empty());
    }
}

//! Fault injection through the `failpoints` feature: deterministic panics,
//! stalls, and decode failures at named sites, driven through the faulted
//! parallel driver and the recovering trace decoders. Compiled (and run by
//! `ci.sh`) only with `--features failpoints`; the sites cost nothing in
//! normal builds.
#![cfg(feature = "failpoints")]

use parda::prelude::*;
use parda::trace::io::{write_trace_v2_framed, Encoding};
use parda::trace::load_trace_recovering;
use std::sync::Mutex;
use std::time::Duration;

/// The failpoint registry is process-global; every test serializes on this
/// and starts from a clean slate.
static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parda_failpoint::clear();
    g
}

fn sample_trace(n: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 7919) % 1024).collect()
}

#[test]
fn worker_panic_is_rescued_bit_identically() {
    let _g = exclusive();
    let trace = sample_trace(6000);
    let config = PardaConfig::with_ranks(4);
    let expected = parda_threads::<SplayTree>(&trace, &config);

    parda_failpoint::configure("parallel::worker", "1*panic").unwrap();
    let policy = FaultPolicy::default().backoff(Duration::ZERO);
    let (hist, _, recovery) = parda_threads_faulted::<SplayTree>(&trace, &config, &policy).unwrap();
    assert_eq!(hist, expected, "rescued histogram must be bit-identical");
    assert_eq!(recovery.rank_retries, 1);
    assert_eq!(recovery.rank_rescues, 1);
    parda_failpoint::clear();
}

#[test]
fn exhausted_retries_surface_as_worker_panic() {
    let _g = exclusive();
    let trace = sample_trace(2000);
    let config = PardaConfig::with_ranks(3);

    // Every worker attempt and every scalar rescue attempt panics.
    parda_failpoint::configure("parallel::worker", "panic").unwrap();
    parda_failpoint::configure("engine::process_chunk_scalar", "panic").unwrap();
    let policy = FaultPolicy::default().retries(1).backoff(Duration::ZERO);
    let err = parda_threads_faulted::<SplayTree>(&trace, &config, &policy).unwrap_err();
    match err {
        PardaError::WorkerPanic { rank, attempts } => {
            assert!(rank < 3);
            assert_eq!(attempts, 2, "one worker attempt + one rescue retry");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
    assert_eq!(err.class(), "worker-panic");
    parda_failpoint::clear();
}

#[test]
fn watchdog_converts_a_stall_into_a_structured_error() {
    let _g = exclusive();
    let trace = sample_trace(2000);
    let config = PardaConfig::with_ranks(2);

    // Workers sleep well past the deadline (finite, so the thread scope
    // still joins); the cascade must give up at the watchdog instead.
    parda_failpoint::configure("parallel::worker_stall", "sleep(400)").unwrap();
    let policy = FaultPolicy::default().watchdog(Duration::from_millis(50));
    let start = std::time::Instant::now();
    let err = parda_threads_faulted::<SplayTree>(&trace, &config, &policy).unwrap_err();
    assert!(
        matches!(err, PardaError::Stall { .. }),
        "expected Stall, got {err}"
    );
    assert_eq!(err.class(), "stall");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stall must be detected promptly, not waited out"
    );
    parda_failpoint::clear();
}

#[test]
fn poisoned_slot_lock_does_not_lose_the_published_result() {
    let _g = exclusive();
    let trace = sample_trace(6000);
    let config = PardaConfig::with_ranks(4);
    let expected = parda_threads::<SplayTree>(&trace, &config);

    // One worker panics *after* writing its slot, poisoning the slot lock;
    // the cascade must read through the poison and need no rescue.
    parda_failpoint::configure("parallel::slot_publish", "1*panic").unwrap();
    let (hist, _, recovery) =
        parda_threads_faulted::<SplayTree>(&trace, &config, &FaultPolicy::default()).unwrap();
    assert_eq!(hist, expected);
    assert_eq!(recovery.rank_retries, 0, "the value was already published");
    parda_failpoint::clear();
}

#[test]
fn frame_decode_failure_honors_the_degradation_policy() {
    let _g = exclusive();
    let trace = sample_trace(640);
    let dir = std::env::temp_dir().join("parda-failpoint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inject.trc");
    let f = std::fs::File::create(&path).unwrap();
    write_trace_v2_framed(f, &Trace::from_vec(trace.clone()), Encoding::Raw, 64).unwrap();

    // Strict: one injected frame-decode failure fails the whole load.
    parda_failpoint::configure("trace::decode_frame", "1*error").unwrap();
    assert!(load_trace_recovering(&path, Degradation::Strict).is_err());

    // Repair: the same failure quarantines exactly one frame. The CRC was
    // fine — the *decode* failed — so crc_failures stays zero.
    parda_failpoint::configure("trace::decode_frame", "1*error").unwrap();
    let (got, m) = load_trace_recovering(&path, Degradation::Repair).unwrap();
    assert_eq!(got.len(), trace.len() - 64);
    assert_eq!(m.frames_skipped, 1);
    assert_eq!(m.refs_dropped, 64);
    assert_eq!(m.crc_failures, 0);

    // Disarmed again: the file is perfectly healthy.
    let (clean, m) = load_trace_recovering(&path, Degradation::Strict).unwrap();
    assert_eq!(clean.as_slice(), trace.as_slice());
    assert!(m.is_clean());
    std::fs::remove_file(&path).unwrap();
    parda_failpoint::clear();
}

#[test]
fn stream_decode_failure_fails_strict_and_degrades_lossy() {
    let _g = exclusive();
    use parda::trace::stream::FramedStream;
    let trace = sample_trace(640);
    let dir = std::env::temp_dir().join("parda-failpoint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream-inject.trc");
    let f = std::fs::File::create(&path).unwrap();
    write_trace_v2_framed(f, &Trace::from_vec(trace.clone()), Encoding::Raw, 64).unwrap();

    let analysis = Analysis::new()
        .mode(Mode::Phased {
            chunk: 100,
            reduction: Reduction::ShipToRankZero,
        })
        .ranks(2)
        .stats(true);

    // Strict: the injected decode failure aborts the streamed analysis.
    parda_failpoint::configure("stream::decode", "1*error").unwrap();
    let err = analysis.run_file(&path).unwrap_err();
    assert_eq!(err.class(), "corrupt", "got {err}");

    // Repair: the failing frame is skipped mid-stream and tallied. A single
    // decoder keeps the injection deterministic (exactly one frame lost).
    parda_failpoint::configure("stream::decode", "1*error").unwrap();
    let stream = FramedStream::open_with_policy(&path, 1, Degradation::Repair).unwrap();
    let errors = stream.error_handle();
    let recovery = stream.recovery_handle();
    let (hist, _) = analysis
        .clone()
        .degradation(Degradation::Repair)
        .run_stream(stream);
    assert!(errors.take().is_none(), "repair absorbs the failure");
    let rec = recovery.lock().unwrap_or_else(|e| e.into_inner()).clone();
    assert_eq!(rec.frames_skipped, 1);
    assert_eq!(rec.refs_dropped, 64);
    assert_eq!(hist.total(), trace.len() as u64 - 64);
    std::fs::remove_file(&path).unwrap();
    parda_failpoint::clear();
}

//! The paper's worked examples (Tables I–III, Figures 1–2) executed
//! through the public facade API.

use parda::prelude::*;

const TABLE1: &str = "dacbccgefa";
const TABLE3: &str = "dacbccgefafbcmtmacfbdcac";

#[test]
fn table1_reuse_distances() {
    // Time:      0 1 2 3 4 5 6 7 8 9
    // Data Ref.: d a c b c c g e f a
    // Distance:  ∞ ∞ ∞ ∞ 1 0 ∞ ∞ ∞ 5
    let trace = Trace::from_labels(TABLE1);
    let expected: Vec<Distance> = vec![
        Distance::Infinite,
        Distance::Infinite,
        Distance::Infinite,
        Distance::Infinite,
        Distance::Finite(1),
        Distance::Finite(0),
        Distance::Infinite,
        Distance::Infinite,
        Distance::Infinite,
        Distance::Finite(5),
    ];
    // Per-reference check with the naive stack (which exposes distances).
    let mut stack = NaiveStack::new();
    for (i, (&addr, &want)) in trace.as_slice().iter().zip(&expected).enumerate() {
        assert_eq!(Distance::from(stack.access(addr)), want, "reference {i}");
    }
    // Aggregate check through the tree engine.
    let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    let expected_hist: ReuseHistogram = expected.into_iter().collect();
    assert_eq!(hist, expected_hist);
}

#[test]
fn figure1_distance_computation_at_time_9() {
    // Figure 1: processing the second 'a' at time 9 computes d = 5 via the
    // tree walk 1 + weight(right subtrees) and leaves the tree holding
    // {0:d, 3:b, 5:c, 6:g, 7:e, 8:f, 9:a}.
    let trace = Trace::from_labels(TABLE1);
    let mut engine: parda::core::Engine<SplayTree> = parda::core::Engine::new(None, 0);
    engine.process_chunk(&trace.as_slice()[..9], 0, parda::core::MissSink::Infinite);

    let before: Vec<(u64, u64)> = engine.export_state();
    assert_eq!(
        before,
        vec![
            (0, b'd' as u64),
            (1, b'a' as u64),
            (3, b'b' as u64),
            (5, b'c' as u64),
            (6, b'g' as u64),
            (7, b'e' as u64),
            (8, b'f' as u64),
        ],
        "Figure 1(a) tree contents"
    );

    engine.process_chunk(&trace.as_slice()[9..], 9, parda::core::MissSink::Infinite);
    assert_eq!(engine.histogram().count(5), 1, "d(a@9) = 5");
    let after: Vec<(u64, u64)> = engine.export_state();
    assert_eq!(
        after,
        vec![
            (0, b'd' as u64),
            (3, b'b' as u64),
            (5, b'c' as u64),
            (6, b'g' as u64),
            (7, b'e' as u64),
            (8, b'f' as u64),
            (9, b'a' as u64),
        ],
        "Figure 1(b) tree contents"
    );
}

#[test]
fn table2_two_processor_local_vs_global() {
    // Table II: trace d a c b c c | g e f a f b c over two processors.
    // Global distances: ∞ ∞ ∞ ∞ 1 0 ∞ ∞ ∞ 5 1 5 5.
    let trace = Trace::from_labels("dacbccgefafbc");
    let seq = analyze_sequential::<SplayTree>(trace.as_slice(), None);
    assert_eq!(seq.infinite(), 7);
    assert_eq!(seq.count(0), 1);
    assert_eq!(seq.count(1), 2);
    assert_eq!(seq.count(5), 3);

    // The parallel algorithm must resolve the right chunk's local
    // infinities (a, b, c) to their global distance 5.
    let hist = parda_threads::<SplayTree>(trace.as_slice(), &PardaConfig::with_ranks(2));
    assert_eq!(hist, seq);
}

#[test]
fn table3_three_processor_analysis() {
    // Table III trace, 24 references, analyzed with 3 processors (the
    // Figure 2 walkthrough) and cross-checked against all engines.
    let trace = Trace::from_labels(TABLE3);
    assert_eq!(trace.len(), 24);
    assert_eq!(trace.distinct(), 9); // d a c b g e f m t

    let reference = analyze_naive(trace.as_slice());
    assert_eq!(reference.infinite(), 9);
    let parallel = parda_threads::<SplayTree>(trace.as_slice(), &PardaConfig::with_ranks(3));
    assert_eq!(parallel, reference);
    let message_passing = parda_msg::<SplayTree>(trace.as_slice(), &PardaConfig::with_ranks(3));
    assert_eq!(message_passing, reference);
}

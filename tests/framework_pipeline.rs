//! Integration test for the paper's Figure 3 framework: an instrumented
//! program streams through a pipe into the multi-phase parallel analyzer,
//! and the result matches offline analysis of the same program.

use parda::pinsim::{collect_trace, run_through_pipe, HashJoin, MatMul, StreamTriad};
use parda::prelude::*;

fn end_to_end<P>(program: P, ranks: usize, phase_chunk: usize)
where
    P: parda::pinsim::SyntheticProgram + Clone + Send + 'static,
{
    let offline_trace = collect_trace(program.clone());
    let offline = analyze_sequential::<SplayTree>(offline_trace.as_slice(), None);

    let reader = run_through_pipe(program, 16 * 1024);
    let online = parda_phased::<SplayTree, _>(reader, phase_chunk, &PardaConfig::with_ranks(ranks));

    assert_eq!(online, offline);
}

#[test]
fn matmul_through_the_full_framework() {
    end_to_end(MatMul::naive(12), 4, 512);
}

#[test]
fn blocked_matmul_through_the_full_framework() {
    end_to_end(MatMul::blocked(12, 4), 3, 333);
}

#[test]
fn hash_join_through_the_full_framework() {
    end_to_end(HashJoin::new(500, 2_000, 7), 2, 1_000);
}

#[test]
fn stream_triad_with_tiny_phases() {
    // Tiny phases stress the state-reduction path: many phases, each
    // carrying the global state forward.
    end_to_end(StreamTriad::new(200, 3), 4, 50);
}

#[test]
fn pipe_backpressure_does_not_deadlock_analysis() {
    // A pipe much smaller than the trace forces the producer to block on
    // the analyzer repeatedly.
    let program = StreamTriad::new(2_000, 4);
    let offline_trace = collect_trace(program.clone());
    let offline = analyze_sequential::<SplayTree>(offline_trace.as_slice(), None);
    let reader = run_through_pipe(program, 256);
    let online = parda_phased::<SplayTree, _>(reader, 128, &PardaConfig::with_ranks(3));
    assert_eq!(online, offline);
}

#[test]
fn bounded_online_analysis_matches_bounded_contract() {
    let program = MatMul::naive(10);
    let trace = collect_trace(program.clone());
    let full = analyze_sequential::<SplayTree>(trace.as_slice(), None);

    let bound = 64u64;
    let mut config = PardaConfig::with_ranks(3);
    config.bound = Some(bound);
    let reader = run_through_pipe(program, 4_096);
    let bounded = parda_phased::<SplayTree, _>(reader, 256, &config);

    assert_eq!(bounded.total(), full.total());
    for d in 0..bound {
        assert_eq!(bounded.count(d), full.count(d), "bucket {d}");
    }
    for cap in [1u64, 8, 32, 64] {
        assert_eq!(
            bounded.miss_count(cap),
            full.miss_count(cap),
            "capacity {cap}"
        );
    }
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   ./ci.sh          # everything (fmt + clippy + build + tests)
#   ./ci.sh --quick  # skip the release build, run debug tests only
#
# Mirrors what reviewers run before merging; all steps must pass.
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step" >&2
fi

if [[ $quick -eq 0 ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test (tier-1)"
cargo test -q

step "cargo test --workspace"
cargo test --workspace -q

echo
echo "ci: all checks passed"

#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   ./ci.sh          # everything (fmt + clippy + build + tests)
#   ./ci.sh --quick  # skip the release build, run debug tests only
#
# Mirrors what reviewers run before merging; all steps must pass.
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step" >&2
fi

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ $quick -eq 0 ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test (tier-1)"
cargo test -q

step "cargo test --workspace"
cargo test --workspace -q

step "cargo test --features failpoints (fault injection suite)"
cargo test --features failpoints -q
cargo test -p parda-core --features failpoints -q
cargo test -p parda-trace --features failpoints -q
cargo test -p parda-server --features failpoints -q

step "cargo bench --no-run (benches must compile)"
cargo bench --workspace --no-run --quiet

step "hotpath perf smoke (1M refs; threads8/seq must hold the committed floors)"
hotpath_out=$(mktemp)
cargo run -q --release -p parda-bench --bin hotpath -- \
    --refs 1000000 --footprint 100000 --runs 2 --out "$hotpath_out" > /dev/null
python3 - "$hotpath_out" BENCH_hotpath_floor.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
floors = json.load(open(sys.argv[2]))["floors"]
measured = {s["tree"]: s["threads8_over_seq"] for s in report["speedups"]}
failed = False
for tree, floor in floors.items():
    ratio = measured[tree]
    ok = ratio >= floor
    print(f"  {tree}: threads8/seq {ratio:.2f}x (floor {floor:.2f}x)"
          f" {'ok' if ok else 'REGRESSED'}")
    failed |= not ok
sys.exit(1 if failed else 0)
EOF
rm -f "$hotpath_out"

step "approx accuracy smoke (1M refs; MAE must hold the committed ceilings)"
approx_out=$(mktemp)
cargo run -q --release -p parda-bench --bin sampling_accuracy -- \
    --refs 1000000 --out "$approx_out" > /dev/null
python3 - "$approx_out" BENCH_approx_floor.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
ceilings = json.load(open(sys.argv[2]))["mae_ceilings"]
failed = False
for row in report["rows"]:
    ceiling = ceilings.get(row["workload"], {}).get(row["mode"])
    if ceiling is None:
        continue
    ok = row["mae"] <= ceiling
    print(f"  {row['workload']}/{row['mode']}: MAE {row['mae']:.4f}"
          f" (ceiling {ceiling}) {'ok' if ok else 'REGRESSED'}")
    failed |= not ok
sys.exit(1 if failed else 0)
EOF
rm -f "$approx_out"

step "server ingest smoke (400k refs; sharded daemon must hold the committed floors)"
server_out=$(mktemp)
cargo run -q --release -p parda-bench --bin server_ingest -- \
    --refs 400000 --runs 1 --out "$server_out" > /dev/null
python3 - "$server_out" BENCH_server_floor.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
gate = json.load(open(sys.argv[2]))
rows = {f"{r['mode']}/{r['sessions']}": r for r in report["results"]}
failed = False
for key, floor in gate["floors"].items():
    rps = rows[key]["refs_per_sec"]
    ok = rps >= floor
    print(f"  {key}: {rps} refs/s (floor {floor}) {'ok' if ok else 'REGRESSED'}")
    failed |= not ok
ceiling = gate["sketch_mem_ceiling_bytes"]
mem = rows["loopback-sketch/256"]["mem_per_session_bytes"]
ok = mem <= ceiling
print(f"  loopback-sketch/256: {mem}B/session (ceiling {ceiling}B)"
      f" {'ok' if ok else 'REGRESSED'}")
failed |= not ok
sys.exit(1 if failed else 0)
EOF
rm -f "$server_out"

step "shared-cache smoke (400k refs; concurrent analyzer must stay cachesim-exact and hold the floors)"
shared_out=$(mktemp)
cargo run -q --release -p parda-bench --bin shared_cache -- \
    --refs 400000 --runs 1 --out "$shared_out" > /dev/null
python3 - "$shared_out" BENCH_shared_floor.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
gate = json.load(open(sys.argv[2]))
rows = {r["workload"]: r for r in report["results"]}
failed = False
for name, row in rows.items():
    ok = row["cachesim_exact"]
    print(f"  {name}: cachesim_exact={row['cachesim_exact']}"
          f" {'ok' if ok else 'DIVERGED FROM LRU SIMULATION'}")
    failed |= not ok
for key, floor in gate["floors"].items():
    rps = rows[key]["refs_per_sec"]
    ok = rps >= floor
    print(f"  {key}: {rps} refs/s (floor {floor}) {'ok' if ok else 'REGRESSED'}")
    failed |= not ok
sys.exit(1 if failed else 0)
EOF
rm -f "$shared_out"

if [[ $quick -eq 0 ]]; then
    step "approx acceptance (10M-ref zipf, shards-smax:8192 within 2% MAE; release)"
    cargo test --release -q --test approx_accuracy -- --ignored
fi

step "--stats=json smoke (analyze a v2 trace, output must be valid JSON)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q -p parda-cli --bin parda -- \
    gen --pattern zipf --footprint 2000 --refs 100000 --out "$smoke_dir/smoke.trc"
cargo run -q -p parda-cli --bin parda -- \
    analyze "$smoke_dir/smoke.trc" --engine msg --ranks 8 --stats=json \
    | python3 -m json.tool > /dev/null
cargo run -q -p parda-cli --bin parda -- \
    analyze "$smoke_dir/smoke.trc" --stream --stats=json \
    | python3 -m json.tool > /dev/null

step "corruption smoke (checksums catch a flipped byte; best-effort recovers)"
cargo run -q -p parda-cli --bin parda -- \
    gen --pattern zipf --footprint 2000 --refs 200000 --out "$smoke_dir/dirty.trc"
cargo run -q -p parda-cli --bin parda -- analyze "$smoke_dir/dirty.trc" --verify > /dev/null
# Flip one payload byte past the header; strict must exit 2, best-effort 0.
python3 - "$smoke_dir/dirty.trc" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0x40
open(p, "wb").write(b)
EOF
set +e
cargo run -q -p parda-cli --bin parda -- analyze "$smoke_dir/dirty.trc" > /dev/null 2>&1
code=$?
set -e
if [[ $code -ne 2 ]]; then
    echo "corruption smoke: expected exit 2 (corrupt), got $code" >&2
    exit 1
fi
cargo run -q -p parda-cli --bin parda -- \
    analyze "$smoke_dir/dirty.trc" --degradation=best-effort --stats=json \
    | python3 -m json.tool > /dev/null

step "server smoke (serve + submit must equal offline analyze, drain on SIGTERM)"
# Run the binary directly: `cargo run` does not forward SIGTERM to its child,
# and the graceful-drain assertion below depends on the daemon receiving it.
cargo build -q -p parda-cli
parda_bin=target/debug/parda
"$parda_bin" gen --pattern zipf --footprint 100000 --refs 1000000 --seed 7 \
    --out "$smoke_dir/server.trc"
"$parda_bin" serve --addr 127.0.0.1:0 --max-sessions 16 > "$smoke_dir/serve.out" &
serve_pid=$!
# Port discovery: the daemon prints its bound address before accepting.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^parda-server listening on //p' "$smoke_dir/serve.out")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "server smoke: daemon never reported its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
"$parda_bin" submit "$smoke_dir/server.trc" --addr "$addr" --json \
    > "$smoke_dir/served.json"
"$parda_bin" analyze "$smoke_dir/server.trc" --json > "$smoke_dir/offline.json"
if ! diff -q "$smoke_dir/served.json" "$smoke_dir/offline.json" > /dev/null; then
    echo "server smoke: served histogram differs from offline analyze" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Approx round-trip: a sampled session must stream to the same sketch the
# offline path builds, so the replies are byte-identical too.
"$parda_bin" submit "$smoke_dir/server.trc" --addr "$addr" --approx=shards:0.01 --json \
    > "$smoke_dir/served_approx.json"
"$parda_bin" analyze "$smoke_dir/server.trc" --approx=shards:0.01 --json \
    > "$smoke_dir/offline_approx.json"
if ! diff -q "$smoke_dir/served_approx.json" "$smoke_dir/offline_approx.json" > /dev/null; then
    echo "server smoke: served approx histogram differs from offline --approx" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
"$parda_bin" submit "$smoke_dir/server.trc" --addr "$addr" --approx=shards:0.01 --stats=json \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
approx = doc["stats"]["approx"]
assert approx["mode"] == "shards", approx
assert approx["sketch_bytes"] > 0, approx
'
# Thread-aware shared-cache analysis: a tagged mt-kernel trace must get
# the identical partition recommendation offline and through the daemon's
# tagged-session verb, and --stats=json must carry the SharedMetrics block.
"$parda_bin" gen --kernel mt-stencil --size 48 --threads 3 \
    --out "$smoke_dir/mt.trc"
"$parda_bin" partition "$smoke_dir/mt.trc" --capacity 2048 \
    > "$smoke_dir/part_offline.txt"
"$parda_bin" partition "$smoke_dir/mt.trc" --capacity 2048 --addr "$addr" \
    > "$smoke_dir/part_served.txt"
if ! diff -q "$smoke_dir/part_offline.txt" "$smoke_dir/part_served.txt" > /dev/null; then
    echo "server smoke: served partition recommendation differs from offline" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
"$parda_bin" partition "$smoke_dir/mt.trc" --capacity 2048 --stats=json \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
shared = doc["stats"]["shared"]
assert shared["threads"] == 3, shared
assert shared["model"] == "as-recorded", shared
assert sum(shared["allocation"]) <= shared["capacity"] == 2048, shared
assert shared["predicted_misses"] > 0, shared
'
# Sixteen concurrent sessions: the sharded core must round-trip all of
# them at once, each reply byte-identical to the offline analyze.
submit_pids=()
for i in $(seq 1 16); do
    "$parda_bin" submit "$smoke_dir/server.trc" --addr "$addr" --json \
        > "$smoke_dir/served_$i.json" &
    submit_pids+=($!)
done
for pid in "${submit_pids[@]}"; do
    if ! wait "$pid"; then
        echo "server smoke: a concurrent submit failed" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
done
for i in $(seq 1 16); do
    if ! diff -q "$smoke_dir/served_$i.json" "$smoke_dir/offline.json" > /dev/null; then
        echo "server smoke: concurrent session $i differs from offline analyze" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
done
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "server smoke: daemon did not drain cleanly on SIGTERM" >&2
    exit 1
fi
grep -q "sessions opened=20 rejected=0 failed=0 completed=20" "$smoke_dir/serve.out" || {
    echo "server smoke: unexpected final metrics:" >&2
    cat "$smoke_dir/serve.out" >&2
    exit 1
}

step "chaos smoke (injected resets + torn writes; retrying submit equals offline, zero lost sessions)"
# A failpoints build of the CLI lets PARDA_FAILPOINTS inject connection
# resets mid-stream and a torn reply write into the live daemon. The
# retrying client must reconnect, RESUME, and still produce a JSON reply
# byte-identical to the offline analyze of the same 1M-ref trace. The
# trace is 16 DATA frames (64Ki refs each), so the resets land on the
# 6th and 12th frame ingests and the tear on the 5th reply flush.
cargo build -q -p parda-cli --features failpoints
PARDA_FAILPOINTS="server::conn_reset=2*every(6)*error;server::partial_write=1*every(5)*error" \
    "$parda_bin" serve --addr 127.0.0.1:0 --max-sessions 4 \
    --orphan-retention 30 --ack-every 8 > "$smoke_dir/chaos.out" &
chaos_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^parda-server listening on //p' "$smoke_dir/chaos.out")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "chaos smoke: daemon never reported its address" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! "$parda_bin" submit "$smoke_dir/server.trc" --addr "$addr" \
    --retries 5 --backoff 20 --json > "$smoke_dir/chaos.json"; then
    echo "chaos smoke: retrying submit failed outright" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
if ! diff -q "$smoke_dir/chaos.json" "$smoke_dir/offline.json" > /dev/null; then
    echo "chaos smoke: histogram after injected disconnects differs from offline" >&2
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$chaos_pid"
if ! wait "$chaos_pid"; then
    echo "chaos smoke: daemon did not drain cleanly on SIGTERM" >&2
    exit 1
fi
python3 - "$smoke_dir/chaos.out" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"sessions opened=(\d+) rejected=(\d+) failed=(\d+) completed=(\d+)", text)
assert m, f"no session summary line:\n{text}"
opened, rejected, failed, completed = map(int, m.groups())
assert failed == 0, f"chaos lost sessions:\n{text}"
assert completed == 1, f"expected exactly one completed session:\n{text}"
r = re.search(r"resume orphaned=(\d+) resumed=(\d+) expired=(\d+) acks_sent=(\d+)", text)
assert r, f"no resume metrics line:\n{text}"
orphaned, resumed, expired, acks = map(int, r.groups())
assert resumed >= 1, f"no session was ever resumed:\n{text}"
assert expired == 0, f"an orphan expired instead of resuming:\n{text}"
assert resumed + expired == orphaned, f"orphan accounting does not reconcile:\n{text}"
assert acks > 0, f"the server never ACKed ingest progress:\n{text}"
print(f"  chaos: orphaned={orphaned} resumed={resumed} expired={expired}"
      f" acks_sent={acks} — histogram bit-identical")
EOF

echo
echo "ci: all checks passed"
